/**
 * @file
 * Shard wire-protocol implementation: journal-style CRC framing plus
 * the typed message encoders/decoders.
 */

#include "core/shard_protocol.hh"

#include <cstring>
#include <limits>

#include "base/check.hh"
#include "core/journal.hh"

namespace statsched
{
namespace core
{

namespace
{

/** Little-endian append helpers (mirrors the journal's ByteWriter). */
void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
}

/** Bounds-checked little-endian reader over a frame payload. */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    bool
    u8(std::uint8_t &v)
    {
        if (pos_ + 1 > bytes_.size())
            return false;
        v = bytes_[pos_++];
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (pos_ + 4 > bytes_.size())
            return false;
        v = 0;
        for (int shift = 0; shift < 32; shift += 8)
            v |= static_cast<std::uint32_t>(bytes_[pos_++]) << shift;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int shift = 0; shift < 64; shift += 8)
            v |= static_cast<std::uint64_t>(bytes_[pos_++]) << shift;
        return true;
    }

    bool exhausted() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<std::uint8_t> &bytes_;
    std::size_t pos_ = 0;
};

/** valueBits <-> double, the journal's bit-exact representation. */
std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

} // anonymous namespace

void
appendShardFrame(std::vector<std::uint8_t> &out, ShardMsg type,
                 const std::uint8_t *payload, std::size_t size)
{
    SCHED_REQUIRE(size <= std::numeric_limits<std::uint16_t>::max(),
                  "shard frame payload exceeds the u16 size field");
    const std::size_t start = out.size();
    putU8(out, static_cast<std::uint8_t>(type));
    putU16(out, static_cast<std::uint16_t>(size));
    out.insert(out.end(), payload, payload + size);
    const std::uint32_t crc =
        journalCrc32(out.data() + start, out.size() - start);
    putU32(out, crc);
}

void
ShardFrameParser::feed(const std::uint8_t *data, std::size_t size)
{
    if (corrupt_)
        return; // nothing after a CRC failure is trustworthy
    // Compact the consumed prefix before growing the buffer.
    if (pos_ > 0 && pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

bool
ShardFrameParser::next(ShardFrame &frame)
{
    if (corrupt_)
        return false;
    const std::size_t avail = buffer_.size() - pos_;
    if (avail < 3)
        return false;
    const std::uint16_t size = static_cast<std::uint16_t>(
        buffer_[pos_ + 1] |
        (static_cast<std::uint16_t>(buffer_[pos_ + 2]) << 8));
    const std::size_t total = 3u + size + 4u;
    if (avail < total)
        return false;
    const std::uint8_t *base = buffer_.data() + pos_;
    std::uint32_t wireCrc = 0;
    for (int b = 0; b < 4; ++b) {
        wireCrc |= static_cast<std::uint32_t>(base[3 + size + b])
            << (8 * b);
    }
    if (journalCrc32(base, 3u + size) != wireCrc) {
        corrupt_ = true;
        return false;
    }
    frame.type = base[0];
    frame.payload.assign(base + 3, base + 3 + size);
    pos_ += total;
    return true;
}

void
appendHello(std::vector<std::uint8_t> &out, const ShardHello &hello)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, hello.version);
    putU64(payload, hello.configHash);
    putU32(payload, hello.cores);
    putU32(payload, hello.pipesPerCore);
    putU32(payload, hello.strandsPerPipe);
    putU32(payload, hello.tasks);
    appendShardFrame(out, ShardMsg::Hello, payload.data(),
                     payload.size());
}

void
appendEvalRequest(std::vector<std::uint8_t> &out,
                  const ShardEvalRequest &request)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, request.reqId);
    putU64(payload, request.cursorBase);
    putU32(payload, request.batchSize);
    putU32(payload, request.itemCount);
    appendShardFrame(out, ShardMsg::EvalRequest, payload.data(),
                     payload.size());
}

void
appendEvalItem(std::vector<std::uint8_t> &out,
               const ShardEvalItem &item)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, item.localIndex);
    putU32(payload, static_cast<std::uint32_t>(item.contexts.size()));
    for (const ContextId ctx : item.contexts)
        putU32(payload, ctx);
    appendShardFrame(out, ShardMsg::EvalItem, payload.data(),
                     payload.size());
}

void
appendEvalResponse(std::vector<std::uint8_t> &out,
                   const ShardEvalResponse &response)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, response.reqId);
    putU32(payload, response.itemCount);
    appendShardFrame(out, ShardMsg::EvalResponse, payload.data(),
                     payload.size());
}

void
appendEvalOutcome(std::vector<std::uint8_t> &out,
                  const ShardEvalOutcome &outcome)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, outcome.localIndex);
    putU64(payload, doubleBits(outcome.outcome.value));
    putU8(payload,
          static_cast<std::uint8_t>(outcome.outcome.status));
    putU32(payload, outcome.outcome.attempts);
    appendShardFrame(out, ShardMsg::EvalOutcome, payload.data(),
                     payload.size());
}

void
appendPing(std::vector<std::uint8_t> &out, std::uint32_t nonce)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, nonce);
    appendShardFrame(out, ShardMsg::Ping, payload.data(),
                     payload.size());
}

void
appendPong(std::vector<std::uint8_t> &out, std::uint32_t nonce)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, nonce);
    appendShardFrame(out, ShardMsg::Pong, payload.data(),
                     payload.size());
}

void
appendShutdown(std::vector<std::uint8_t> &out)
{
    appendShardFrame(out, ShardMsg::Shutdown, nullptr, 0);
}

void
appendWorkerError(std::vector<std::uint8_t> &out,
                  const std::string &detail)
{
    // Truncate rather than fail: the description is diagnostic only.
    const std::size_t n = std::min<std::size_t>(detail.size(), 1024);
    appendShardFrame(
        out, ShardMsg::WorkerError,
        reinterpret_cast<const std::uint8_t *>(detail.data()), n);
}

bool
decodeHello(const ShardFrame &frame, ShardHello &hello)
{
    if (frame.type != static_cast<std::uint8_t>(ShardMsg::Hello))
        return false;
    PayloadReader in(frame.payload);
    return in.u32(hello.version) && in.u64(hello.configHash) &&
        in.u32(hello.cores) && in.u32(hello.pipesPerCore) &&
        in.u32(hello.strandsPerPipe) && in.u32(hello.tasks) &&
        in.exhausted();
}

bool
decodeEvalRequest(const ShardFrame &frame, ShardEvalRequest &request)
{
    if (frame.type !=
        static_cast<std::uint8_t>(ShardMsg::EvalRequest))
        return false;
    PayloadReader in(frame.payload);
    return in.u32(request.reqId) && in.u64(request.cursorBase) &&
        in.u32(request.batchSize) && in.u32(request.itemCount) &&
        in.exhausted();
}

bool
decodeEvalItem(const ShardFrame &frame, ShardEvalItem &item)
{
    if (frame.type != static_cast<std::uint8_t>(ShardMsg::EvalItem))
        return false;
    PayloadReader in(frame.payload);
    std::uint32_t count = 0;
    if (!in.u32(item.localIndex) || !in.u32(count))
        return false;
    item.contexts.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!in.u32(item.contexts[i]))
            return false;
    }
    return in.exhausted();
}

bool
decodeEvalResponse(const ShardFrame &frame,
                   ShardEvalResponse &response)
{
    if (frame.type !=
        static_cast<std::uint8_t>(ShardMsg::EvalResponse))
        return false;
    PayloadReader in(frame.payload);
    return in.u32(response.reqId) && in.u32(response.itemCount) &&
        in.exhausted();
}

bool
decodeEvalOutcome(const ShardFrame &frame, ShardEvalOutcome &outcome)
{
    if (frame.type !=
        static_cast<std::uint8_t>(ShardMsg::EvalOutcome))
        return false;
    PayloadReader in(frame.payload);
    std::uint64_t bits = 0;
    std::uint8_t status = 0;
    if (!in.u32(outcome.localIndex) || !in.u64(bits) ||
        !in.u8(status) || !in.u32(outcome.outcome.attempts) ||
        !in.exhausted())
        return false;
    if (status >
        static_cast<std::uint8_t>(MeasureStatus::Quarantined))
        return false;
    outcome.outcome.value = bitsDouble(bits);
    outcome.outcome.status = static_cast<MeasureStatus>(status);
    return true;
}

bool
decodePingPong(const ShardFrame &frame, std::uint32_t &nonce)
{
    if (frame.type != static_cast<std::uint8_t>(ShardMsg::Ping) &&
        frame.type != static_cast<std::uint8_t>(ShardMsg::Pong))
        return false;
    PayloadReader in(frame.payload);
    return in.u32(nonce) && in.exhausted();
}

bool
decodeWorkerError(const ShardFrame &frame, std::string &detail)
{
    if (frame.type !=
        static_cast<std::uint8_t>(ShardMsg::WorkerError))
        return false;
    detail.assign(frame.payload.begin(), frame.payload.end());
    return true;
}

std::uint64_t
shardConfigFingerprint(const std::string &config)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : config) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace core
} // namespace statsched
