/**
 * @file
 * Wire protocol between a sharding coordinator and its workers.
 *
 * core::ShardedEngine partitions measurement batches across worker
 * processes (tools/statsched_worker.cc) over plain stdin/stdout
 * pipes. The framing is the measurement journal's record framing
 * (core/journal.hh) reused verbatim:
 *
 *   frame := type:u8 size:u16 payload:size*u8 crc:u32
 *            (all integers little-endian; crc = journalCrc32 of
 *             type + size + payload)
 *
 * so one checksum implementation protects both the on-disk and the
 * on-pipe representation of a measurement, and a frame torn by a
 * dying worker is detected the same way a torn journal record is:
 * by its CRC, never trusted.
 *
 * Messages (payload layouts; multi-byte integers little-endian):
 *
 *   Hello        (w->c)  version:u32 configHash:u64 cores:u32
 *                        pipesPerCore:u32 strandsPerPipe:u32
 *                        tasks:u32
 *   EvalRequest  (c->w)  reqId:u32 cursorBase:u64 batchSize:u32
 *                        itemCount:u32
 *   EvalItem     (c->w)  localIndex:u32 contextCount:u32
 *                        contexts:contextCount*u32
 *   EvalResponse (w->c)  reqId:u32 itemCount:u32
 *   EvalOutcome  (w->c)  localIndex:u32 valueBits:u64 status:u8
 *                        attempts:u32
 *   Ping         (c->w)  nonce:u32
 *   Pong         (w->c)  nonce:u32
 *   Shutdown     (c->w)  (empty)
 *   WorkerError  (w->c)  (payload: UTF-8 description)
 *
 * An EvalRequest group is the request frame followed by exactly
 * itemCount EvalItem frames; the response group mirrors it. The
 * determinism contract rides on (cursorBase, batchSize): the worker
 * evaluates item localIndex of the request through a batch kernel
 * reserved at measurement index cursorBase (see
 * core/shard_worker.hh), so the outcome of every (assignment,
 * global index) pair is the same whichever worker computes it —
 * which is what makes shard failover and re-issue invisible in the
 * results.
 */

#ifndef STATSCHED_CORE_SHARD_PROTOCOL_HH
#define STATSCHED_CORE_SHARD_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/performance_engine.hh"
#include "core/topology.hh"

namespace statsched
{
namespace core
{

/** Protocol version; a Hello with any other version is rejected. */
constexpr std::uint32_t kShardProtocolVersion = 1;

/** Frame type ids (distinct from the journal's record types; the two
 *  streams never mix, but distinct ids keep hexdumps unambiguous). */
enum class ShardMsg : std::uint8_t
{
    Hello = 0x10,
    EvalRequest = 0x11,
    EvalItem = 0x12,
    EvalResponse = 0x13,
    EvalOutcome = 0x14,
    Ping = 0x15,
    Pong = 0x16,
    Shutdown = 0x17,
    WorkerError = 0x18,
};

/** One parsed frame: a type byte and its CRC-verified payload. */
struct ShardFrame
{
    std::uint8_t type = 0;
    std::vector<std::uint8_t> payload;
};

/** Appends one CRC-framed message to `out`. Payloads are bounded by
 *  the u16 size field; all messages above fit with huge margin. */
void appendShardFrame(std::vector<std::uint8_t> &out, ShardMsg type,
                      const std::uint8_t *payload, std::size_t size);

/**
 * Incremental frame parser over an arbitrarily-chunked byte stream
 * (pipes deliver whatever sizes they like). Feed bytes, then drain
 * complete frames; a CRC mismatch latches corrupt() — the stream is
 * untrustworthy from that point on and the peer must be treated as
 * failed, exactly like a torn journal tail.
 */
class ShardFrameParser
{
  public:
    /** Appends raw bytes to the parse buffer. */
    void feed(const std::uint8_t *data, std::size_t size);

    /** Pops the next complete frame. @return false when no complete
     *  frame is buffered (or the stream is corrupt). */
    bool next(ShardFrame &frame);

    /** @return true once any frame failed its CRC; latched. */
    bool corrupt() const { return corrupt_; }

    /** @return bytes buffered but not yet consumed. */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t pos_ = 0;
    bool corrupt_ = false;
};

// --- Typed message payloads -------------------------------------

/** Worker self-identification, validated by the coordinator. */
struct ShardHello
{
    std::uint32_t version = kShardProtocolVersion;
    std::uint64_t configHash = 0;
    std::uint32_t cores = 0;
    std::uint32_t pipesPerCore = 0;
    std::uint32_t strandsPerPipe = 0;
    std::uint32_t tasks = 0;
};

/** Header of an evaluation request group. */
struct ShardEvalRequest
{
    std::uint32_t reqId = 0;
    /** Global measurement index of batch position 0. */
    std::uint64_t cursorBase = 0;
    /** Size of the whole coordinator-side batch (the kernel span). */
    std::uint32_t batchSize = 0;
    /** EvalItem frames following this header. */
    std::uint32_t itemCount = 0;
};

/** One assignment to evaluate at batch position localIndex. */
struct ShardEvalItem
{
    std::uint32_t localIndex = 0;
    std::vector<ContextId> contexts;
};

/** Header of an evaluation response group. */
struct ShardEvalResponse
{
    std::uint32_t reqId = 0;
    std::uint32_t itemCount = 0;
};

/** One measurement outcome at batch position localIndex. */
struct ShardEvalOutcome
{
    std::uint32_t localIndex = 0;
    MeasurementOutcome outcome;
};

void appendHello(std::vector<std::uint8_t> &out,
                 const ShardHello &hello);
void appendEvalRequest(std::vector<std::uint8_t> &out,
                       const ShardEvalRequest &request);
void appendEvalItem(std::vector<std::uint8_t> &out,
                    const ShardEvalItem &item);
void appendEvalResponse(std::vector<std::uint8_t> &out,
                        const ShardEvalResponse &response);
void appendEvalOutcome(std::vector<std::uint8_t> &out,
                       const ShardEvalOutcome &outcome);
void appendPing(std::vector<std::uint8_t> &out, std::uint32_t nonce);
void appendPong(std::vector<std::uint8_t> &out, std::uint32_t nonce);
void appendShutdown(std::vector<std::uint8_t> &out);
void appendWorkerError(std::vector<std::uint8_t> &out,
                       const std::string &detail);

/** Each decode returns false on a size/shape mismatch (a protocol
 *  violation by the peer — treat the peer as failed). */
bool decodeHello(const ShardFrame &frame, ShardHello &hello);
bool decodeEvalRequest(const ShardFrame &frame,
                       ShardEvalRequest &request);
bool decodeEvalItem(const ShardFrame &frame, ShardEvalItem &item);
bool decodeEvalResponse(const ShardFrame &frame,
                        ShardEvalResponse &response);
bool decodeEvalOutcome(const ShardFrame &frame,
                       ShardEvalOutcome &outcome);
bool decodePingPong(const ShardFrame &frame, std::uint32_t &nonce);
bool decodeWorkerError(const ShardFrame &frame, std::string &detail);

/**
 * FNV-1a of a canonical engine-configuration string. The coordinator
 * hashes the flags that steer measurement values and passes the hash
 * to each worker, whose Hello echoes it — a worker built from a
 * different configuration (wrong binary, stale flags) is rejected at
 * handshake instead of silently corrupting the sample.
 */
std::uint64_t shardConfigFingerprint(const std::string &config);

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_SHARD_PROTOCOL_HH
