/**
 * @file
 * Performance-predictor integration (Section 5.4 of the paper).
 *
 * "It may be the case that the time required to execute thousands of
 * experiments on the target architecture is large or unfeasible. In
 * that case, instead of execution of random task assignments on a
 * target processor, the performance of each assignment in the sample
 * can be predicted using a performance predictor. ... the accuracy of
 * the integrated approach depends on the accuracy of the predictor."
 *
 * TrainedPredictorEngine realizes that integrated approach: it
 * measures a small training sample on a real (slow) engine, fits a
 * ridge regression over structural assignment features (pipe/core
 * crowding histograms and co-location counts), and then serves
 * predictions as a drop-in PerformanceEngine — so the whole
 * statistical pipeline runs unchanged on predicted performance.
 */

#ifndef STATSCHED_CORE_PREDICTOR_HH
#define STATSCHED_CORE_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Structural feature vector of an assignment: intercept, pipe-load
 * histogram (loads 2..strandsPerPipe), core-load histogram buckets,
 * same-pipe and same-core task-pair counts, and per-task pipe-load
 * sums. Exposed for tests and for custom predictors.
 */
std::vector<double> assignmentFeatures(const Assignment &assignment);

/**
 * Quality of a trained predictor on a held-out sample.
 */
struct PredictorAccuracy
{
    double rSquared = 0.0;        //!< coefficient of determination
    double meanAbsErrorPct = 0.0; //!< mean |error| / mean target
};

/**
 * Ridge-regression predictor trained on measured assignments.
 */
class TrainedPredictorEngine : public PerformanceEngine
{
  public:
    /**
     * Trains on `training_n` random assignments measured by `oracle`.
     *
     * @param oracle     The real engine to learn from (not owned;
     *                   used only during construction).
     * @param topology   Processor shape.
     * @param tasks      Workload size.
     * @param training_n Training sample size (>= 30).
     * @param seed       Sampler seed for the training draws.
     * @param lambda     Ridge strength.
     */
    TrainedPredictorEngine(PerformanceEngine &oracle,
                           const Topology &topology,
                           std::uint32_t tasks, std::size_t training_n,
                           std::uint64_t seed, double lambda = 1e-6);

    /** @return the predicted performance (instantaneous). */
    double measure(const Assignment &assignment) override;

    std::string name() const override;

    /** Predictors are effectively free per prediction (the paper
     *  assumes ~1 us). */
    double secondsPerMeasurement() const override { return 1e-6; }

    /**
     * Evaluates accuracy on fresh assignments measured by the oracle.
     *
     * @param oracle Engine to compare against.
     * @param n      Held-out sample size.
     * @param seed   Sampler seed (use one distinct from training).
     */
    PredictorAccuracy evaluate(PerformanceEngine &oracle,
                               std::size_t n, std::uint64_t seed);

    /** @return the learned weights (intercept first). */
    const std::vector<double> &weights() const { return weights_; }

  private:
    Topology topology_;
    std::uint32_t tasks_;
    std::string oracleName_;
    std::vector<double> weights_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_PREDICTOR_HH
