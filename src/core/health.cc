/**
 * @file
 * Campaign health aggregate implementation.
 */

#include "core/health.hh"

namespace statsched
{
namespace core
{

const char *
healthLevelName(HealthLevel level)
{
    switch (level) {
      case HealthLevel::Ok:
        return "ok";
      case HealthLevel::Degraded:
        return "degraded";
      case HealthLevel::Failing:
        return "failing";
    }
    return "?";
}

void
Health::transition(const std::string &component, HealthLevel level,
                   const std::string &detail)
{
    HealthTransition change;
    bool changed = false;
    {
        base::MutexLock lock(mutex_);
        Component *entry = nullptr;
        for (Component &c : components_) {
            if (c.name == component) {
                entry = &c;
                break;
            }
        }
        if (entry == nullptr) {
            components_.push_back(Component{component,
                                            HealthLevel::Ok, ""});
            entry = &components_.back();
        }
        if (entry->level != level) {
            change.component = component;
            change.from = entry->level;
            change.to = level;
            change.detail = detail;
            entry->level = level;
            entry->detail = detail;
            changed = true;
        }
    }
    // Listener runs outside the lock so it may log, print, or call
    // back into this Health without deadlocking.
    if (changed && listener_)
        listener_(change);
}

HealthLevel
Health::level(const std::string &component) const
{
    base::MutexLock lock(mutex_);
    for (const Component &c : components_) {
        if (c.name == component)
            return c.level;
    }
    return HealthLevel::Ok;
}

HealthLevel
Health::worst() const
{
    base::MutexLock lock(mutex_);
    HealthLevel worst = HealthLevel::Ok;
    for (const Component &c : components_) {
        if (static_cast<std::uint8_t>(c.level) >
            static_cast<std::uint8_t>(worst))
            worst = c.level;
    }
    return worst;
}

std::vector<Health::Component>
Health::components() const
{
    base::MutexLock lock(mutex_);
    return components_;
}

} // namespace core
} // namespace statsched
