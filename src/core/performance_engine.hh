/**
 * @file
 * Abstract performance measurement of task assignments.
 *
 * The statistical method is a black-box procedure over "run this
 * assignment and report its performance". PerformanceEngine is that
 * black box: the simulator (sim::SimulatedEngine), the real pinned-
 * thread executor (hw::PinnedThreadEngine), or — as Section 5.4 of
 * the paper suggests — a performance predictor can all stand behind
 * it without the statistics changing.
 *
 * The interface is batch-first: the method's cost is dominated by
 * thousands of ~1.5 s measurements (Section 5.3), and every consumer
 * (estimator, iterative algorithm, local search, baselines) naturally
 * produces whole batches of assignments to measure. Engines that can
 * evaluate items of a batch independently publish a *batch kernel*
 * (parallelKernel()), which core::ParallelEngine fans out over a
 * worker pool; engines without one (e.g. the pinned-thread executor,
 * which owns the physical machine) fall back to the serial loop.
 *
 * Failure channel: real measurements can fail — a pinned pipeline
 * thread hangs, a counter wraps, a reading comes back NaN. The
 * outcome interface (measureOutcome / measureBatchOutcome /
 * outcomeKernel) mirrors the double interface but reports a
 * MeasurementOutcome per item, so failure-aware consumers (the
 * estimator, the iterative algorithm) can exclude failed readings
 * from the statistical sample instead of corrupting the tail fit.
 * Engines that only implement the double channel get the outcome
 * channel for free: non-finite values classify as failed.
 *
 * Decorators (MeteredEngine here, core::ParallelEngine,
 * core::MemoizingEngine, core::FaultInjectingEngine and
 * core::ResilientEngine in their own headers) compose freely; each
 * contributes its counters to one EngineStats through collectStats().
 *
 * Sanctioned decorator ordering (outermost first):
 *
 *   Metered(Memoizing(Resilient(Sharded?(Parallel(FaultInjecting(inner))))))
 *
 * with any subset of the middle layers present (core::ShardedEngine
 * fans batches out to worker processes; when journaling, the journal
 * sits directly above it — see core/journal.hh). The stats contract
 * depends on two ordering rules:
 *
 *  - MeteredEngine sits ABOVE MemoizingEngine. The meter charges
 *    secondsPerMeasurement() for every *requested* measurement and
 *    the memoizer refunds the hits it absorbed; a meter below the
 *    memoizer would never see the hits, and the refund would be
 *    subtracted from time that was never charged (collectStats()
 *    clamps the total at zero, but the split is meaningless).
 *  - MeteredEngine/MemoizingEngine sit ABOVE ResilientEngine. The
 *    resilient layer charges its retries and backoff itself;
 *    metering below it would double-count retry attempts as
 *    requested measurements.
 *
 * ParallelEngine is transparent to the counters, so the meter may sit
 * on either side of it (tests/core/test_engines.cc pins both down).
 */

#ifndef STATSCHED_CORE_PERFORMANCE_ENGINE_HH
#define STATSCHED_CORE_PERFORMANCE_ENGINE_HH

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "base/check.hh"
#include "core/assignment.hh"

namespace statsched
{
namespace core
{

/**
 * Measures one item of a batch: kernel(assignment, i) returns the
 * performance of `assignment` at position `i` of the batch the kernel
 * was created for. Kernels must be safe to invoke concurrently from
 * multiple threads and must not depend on evaluation order — this is
 * the contract that makes parallel batches bit-identical to serial
 * ones.
 */
using BatchKernel =
    std::function<double(const Assignment &, std::size_t)>;

/**
 * Why a measurement did not produce a usable reading.
 */
enum class MeasureStatus : std::uint8_t
{
    Ok = 0,      //!< the value is a valid reading
    Invalid,     //!< the engine returned NaN/inf or garbage
    TimedOut,    //!< the measurement hung and was reaped by a watchdog
    Errored,     //!< the measurement failed transiently (I/O, runtime)
    Quarantined, //!< the assignment is quarantined; not measured at all
};

/** @return a short lowercase name for reports ("ok", "timed-out"...). */
inline const char *
measureStatusName(MeasureStatus status)
{
    switch (status) {
      case MeasureStatus::Ok:          return "ok";
      case MeasureStatus::Invalid:     return "invalid";
      case MeasureStatus::TimedOut:    return "timed-out";
      case MeasureStatus::Errored:     return "errored";
      case MeasureStatus::Quarantined: return "quarantined";
    }
    return "unknown";
}

/**
 * Result of one measurement attempt (or of a retried sequence of
 * attempts when a core::ResilientEngine is in the stack).
 */
struct MeasurementOutcome
{
    /** The reading; meaningful only when ok(). */
    double value = 0.0;
    MeasureStatus status = MeasureStatus::Ok;
    /** Attempts spent producing this outcome (1 without retries). */
    std::uint32_t attempts = 1;

    bool ok() const { return status == MeasureStatus::Ok; }

    /** @return the value, or quiet NaN for failed outcomes — the
     *  double-channel view of this outcome. */
    double
    valueOrNaN() const
    {
        return ok() ? value
                    : std::numeric_limits<double>::quiet_NaN();
    }

    /**
     * Classifies a double-channel reading: finite values are Ok,
     * NaN/inf readings are Invalid. This is the bridge that gives
     * every double-only engine a failure channel.
     */
    static MeasurementOutcome
    classify(double v)
    {
        MeasurementOutcome outcome;
        outcome.value = v;
        if (!std::isfinite(v))
            outcome.status = MeasureStatus::Invalid;
        return outcome;
    }

    /** @return a failed outcome with the given status. */
    static MeasurementOutcome
    failure(MeasureStatus status, std::uint32_t attempts = 1)
    {
        MeasurementOutcome outcome;
        outcome.status = status;
        outcome.attempts = attempts;
        return outcome;
    }
};

/**
 * Outcome-channel analogue of BatchKernel: same purity and
 * thread-safety contract, but each item reports a full
 * MeasurementOutcome.
 */
using OutcomeKernel =
    std::function<MeasurementOutcome(const Assignment &, std::size_t)>;

/**
 * Aggregated statistics of a (possibly decorated) engine stack,
 * filled in by PerformanceEngine::collectStats().
 */
struct EngineStats
{
    /** Measurements requested through the stack (cache hits
     *  included). */
    std::uint64_t measurements = 0;
    /** measureBatch() invocations. */
    std::uint64_t batches = 0;
    /** Measurements served from a memoization cache. */
    std::uint64_t cacheHits = 0;
    /** Measurements that missed the cache and hit the inner engine. */
    std::uint64_t cacheMisses = 0;
    /** Modeled experimentation seconds actually spent on the inner
     *  engine (cache hits cost nothing; retries, backoff waits and
     *  watchdog timeouts cost extra). */
    double modeledSeconds = 0.0;
    /** Failed measurement attempts observed anywhere in the stack
     *  (injected faults, watchdog timeouts, invalid readings). */
    std::uint64_t failures = 0;
    /** Extra attempts spent by a ResilientEngine (retries of failed
     *  measurements and re-measurements of screened outliers). */
    std::uint64_t retries = 0;
    /** Assignment classes quarantined for persistent failure. */
    std::uint64_t quarantined = 0;
    /** Contention solves executed by a simulator in the stack. */
    std::uint64_t solves = 0;
    /** Fixed-point iterations spent across those solves. */
    std::uint64_t solverIterations = 0;
    /** Measurements served by a pooled (reused) scratch workspace. */
    std::uint64_t scratchReuses = 0;
    /** Measurements that had to heap-allocate a workspace because
     *  the pool was exhausted. */
    std::uint64_t scratchFallbacks = 0;
    /** Measurements served by remote shard workers
     *  (core::ShardedEngine). */
    std::uint64_t shardedMeasurements = 0;
    /** Shard failure events: workers that died, hung past their
     *  deadline, or corrupted the protocol. */
    std::uint64_t shardFailures = 0;
    /** Measurements re-issued to another shard (or in-process) after
     *  their original shard failed. */
    std::uint64_t shardReissues = 0;
    /** Replacement shard workers spawned after a failure. */
    std::uint64_t shardRespawns = 0;
    /** Shard slots quarantined for repeated failure (no further
     *  respawn attempts). */
    std::uint64_t shardsQuarantined = 0;
    /** Batches measured (fully or partly) by the in-process engine
     *  because no shard could serve them. */
    std::uint64_t shardDegradedBatches = 0;
    /** Measurements duplicated to a second backend for auditing. */
    std::uint64_t shardAudits = 0;
    /** Audit duplicates whose value bits disagreed with the
     *  primary result. */
    std::uint64_t shardAuditMismatches = 0;
    /** Shard slots convicted of value corruption by arbitration. */
    std::uint64_t shardConvictions = 0;

    /** @return mean fixed-point iterations per solve, or 0. */
    double
    solverIterationsPerSolve() const
    {
        return solves == 0
            ? 0.0
            : static_cast<double>(solverIterations) /
                static_cast<double>(solves);
    }

    /** @return cache hits / lookups, or 0 with no cache in the
     *  stack. */
    double
    cacheHitRate() const
    {
        const std::uint64_t lookups = cacheHits + cacheMisses;
        return lookups == 0
            ? 0.0
            : static_cast<double>(cacheHits) /
                static_cast<double>(lookups);
    }
};

/**
 * Measures the performance of task assignments.
 */
class PerformanceEngine
{
  public:
    virtual ~PerformanceEngine() = default;

    /**
     * Executes (or simulates, or predicts) one assignment and returns
     * its performance. Units are engine-defined; the paper's case
     * study uses processed packets per second (PPS). Higher is
     * better.
     */
    virtual double measure(const Assignment &assignment) = 0;

    /**
     * Measures a batch of assignments; out[i] receives the
     * performance of batch[i]. The default implementation is the
     * serial loop over measure(), so every engine supports batches;
     * engines with independent per-item evaluation override it (or
     * publish a parallelKernel()) for speed.
     *
     * @param batch Assignments to measure.
     * @param out   Results, same size as `batch`.
     */
    virtual void
    measureBatch(std::span<const Assignment> batch,
                 std::span<double> out)
    {
        SCHED_REQUIRE(batch.size() == out.size(),
                      "batch/result size mismatch");
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = measure(batch[i]);
    }

    /**
     * Publishes a thread-safe kernel for one upcoming batch of
     * `batchSize` measurements, or an empty function if this engine
     * cannot evaluate batch items concurrently (the default).
     *
     * Creating a kernel *reserves* the engine's per-measurement state
     * (e.g. the simulator's noise indices) for the whole batch up
     * front, so the kernel is a pure function of (assignment, index):
     * any thread may evaluate any subset of indices in any order and
     * the results are identical to the serial path.
     */
    virtual BatchKernel
    parallelKernel(std::size_t batchSize)
    {
        (void)batchSize;
        return {};
    }

    /**
     * Failure-aware single measurement. The default classifies the
     * double channel: finite readings are Ok, non-finite ones are
     * Invalid. Engines that can distinguish failure modes (timeouts,
     * transient errors) override this.
     */
    virtual MeasurementOutcome
    measureOutcome(const Assignment &assignment)
    {
        return MeasurementOutcome::classify(measure(assignment));
    }

    /**
     * Failure-aware batch measurement; out[i] receives the outcome of
     * batch[i]. The default runs the double-channel measureBatch()
     * and classifies each reading, so every engine supports it.
     */
    virtual void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out)
    {
        SCHED_REQUIRE(batch.size() == out.size(),
                      "batch/result size mismatch");
        std::vector<double> values(batch.size());
        measureBatch(batch, values);
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = MeasurementOutcome::classify(values[i]);
    }

    /**
     * Outcome-channel batch kernel, with the same reservation and
     * purity contract as parallelKernel(). The default wraps the
     * double-channel kernel in classification; engines without a
     * kernel return an empty function.
     */
    virtual OutcomeKernel
    outcomeKernel(std::size_t batchSize)
    {
        BatchKernel kernel = parallelKernel(batchSize);
        if (!kernel)
            return {};
        return [kernel](const Assignment &a, std::size_t i) {
            return MeasurementOutcome::classify(kernel(a, i));
        };
    }

    /**
     * Reserves and discards `count` measurement indices without
     * measuring anything: afterwards the engine's per-index state
     * (noise cursor, fault cursor) stands exactly `count` indices
     * further, as if a batch of that size had been measured.
     *
     * This is how replay-style decorators (core::JournalingEngine,
     * core::ShardedEngine) fast-forward the stack below them past
     * measurements that were already performed elsewhere. The default
     * requests and discards an outcome kernel, which reserves the
     * indices per the outcomeKernel() contract; engines without
     * kernels keep no per-index state, so the discarded empty kernel
     * is the correct no-op. Engines that track indices without
     * publishing kernels must override.
     */
    virtual void
    reserveMeasurementIndices(std::size_t count)
    {
        if (count == 0)
            return;
        OutcomeKernel reservation = outcomeKernel(count);
        (void)reservation;
    }

    /** @return a short description for reports. */
    virtual std::string name() const = 0;

    /**
     * Wall-clock cost of one measurement in seconds, used to report
     * experimentation time (the paper's measurements take ~1.5 s
     * each). Defaults to 0 for instantaneous engines.
     */
    virtual double secondsPerMeasurement() const { return 0.0; }

    /**
     * Accumulates this engine's statistics into `stats`. Decorators
     * add their counters and forward to the wrapped engine, so one
     * call on the top of a stack sees the whole composition. The
     * default contributes nothing.
     */
    virtual void collectStats(EngineStats &stats) const
    {
        (void)stats;
    }
};

/**
 * Decorator that counts measurements and batches and accumulates the
 * modeled experimentation time of the wrapped engine. All counters
 * are atomic, so the decorator may sit on either side of a
 * core::ParallelEngine.
 */
class MeteredEngine : public PerformanceEngine
{
  public:
    /** @param inner Engine to wrap; not owned. */
    explicit MeteredEngine(PerformanceEngine &inner) : inner_(inner) {}

    double
    measure(const Assignment &assignment) override
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        return inner_.measure(assignment);
    }

    void
    measureBatch(std::span<const Assignment> batch,
                 std::span<double> out) override
    {
        count_.fetch_add(batch.size(), std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
        inner_.measureBatch(batch, out);
    }

    BatchKernel
    parallelKernel(std::size_t batchSize) override
    {
        BatchKernel kernel = inner_.parallelKernel(batchSize);
        if (!kernel)
            return {};
        return [this, kernel](const Assignment &a, std::size_t i) {
            count_.fetch_add(1, std::memory_order_relaxed);
            return kernel(a, i);
        };
    }

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        return inner_.measureOutcome(assignment);
    }

    void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out) override
    {
        count_.fetch_add(batch.size(), std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
        inner_.measureBatchOutcome(batch, out);
    }

    OutcomeKernel
    outcomeKernel(std::size_t batchSize) override
    {
        OutcomeKernel kernel = inner_.outcomeKernel(batchSize);
        if (!kernel)
            return {};
        return [this, kernel](const Assignment &a, std::size_t i) {
            count_.fetch_add(1, std::memory_order_relaxed);
            return kernel(a, i);
        };
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(EngineStats &stats) const override
    {
        const std::uint64_t n =
            count_.load(std::memory_order_relaxed);
        stats.measurements += n;
        stats.batches += batches_.load(std::memory_order_relaxed);
        stats.modeledSeconds += static_cast<double>(n) *
            inner_.secondsPerMeasurement();
        inner_.collectStats(stats);
    }

    /**
     * @return the statistics of the whole stack below (and including)
     *         this decorator.
     *
     * Note on modeledSeconds: a MeteredEngine above a memoization
     * cache meters *requested* measurements; the cache subtracts the
     * hits it absorbed, so the total reflects time actually spent.
     */
    EngineStats
    stats() const
    {
        EngineStats s;
        collectStats(s);
        return s;
    }

  private:
    PerformanceEngine &inner_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> batches_{0};
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_PERFORMANCE_ENGINE_HH
