/**
 * @file
 * Abstract performance measurement of task assignments.
 *
 * The statistical method is a black-box procedure over "run this
 * assignment and report its performance". PerformanceEngine is that
 * black box: the simulator (sim::SimulatedEngine), the real pinned-
 * thread executor (hw::PinnedThreadEngine), or — as Section 5.4 of
 * the paper suggests — a performance predictor can all stand behind
 * it without the statistics changing.
 *
 * The interface is batch-first: the method's cost is dominated by
 * thousands of ~1.5 s measurements (Section 5.3), and every consumer
 * (estimator, iterative algorithm, local search, baselines) naturally
 * produces whole batches of assignments to measure. Engines that can
 * evaluate items of a batch independently publish a *batch kernel*
 * (parallelKernel()), which core::ParallelEngine fans out over a
 * worker pool; engines without one (e.g. the pinned-thread executor,
 * which owns the physical machine) fall back to the serial loop.
 *
 * Decorators (MeteredEngine here, core::ParallelEngine and
 * core::MemoizingEngine in their own headers) compose freely; each
 * contributes its counters to one EngineStats through collectStats().
 */

#ifndef STATSCHED_CORE_PERFORMANCE_ENGINE_HH
#define STATSCHED_CORE_PERFORMANCE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/assignment.hh"

namespace statsched
{
namespace core
{

/**
 * Measures one item of a batch: kernel(assignment, i) returns the
 * performance of `assignment` at position `i` of the batch the kernel
 * was created for. Kernels must be safe to invoke concurrently from
 * multiple threads and must not depend on evaluation order — this is
 * the contract that makes parallel batches bit-identical to serial
 * ones.
 */
using BatchKernel =
    std::function<double(const Assignment &, std::size_t)>;

/**
 * Aggregated statistics of a (possibly decorated) engine stack,
 * filled in by PerformanceEngine::collectStats().
 */
struct EngineStats
{
    /** Measurements requested through the stack (cache hits
     *  included). */
    std::uint64_t measurements = 0;
    /** measureBatch() invocations. */
    std::uint64_t batches = 0;
    /** Measurements served from a memoization cache. */
    std::uint64_t cacheHits = 0;
    /** Measurements that missed the cache and hit the inner engine. */
    std::uint64_t cacheMisses = 0;
    /** Modeled experimentation seconds actually spent on the inner
     *  engine (cache hits cost nothing). */
    double modeledSeconds = 0.0;

    /** @return cache hits / lookups, or 0 with no cache in the
     *  stack. */
    double
    cacheHitRate() const
    {
        const std::uint64_t lookups = cacheHits + cacheMisses;
        return lookups == 0
            ? 0.0
            : static_cast<double>(cacheHits) /
                static_cast<double>(lookups);
    }
};

/**
 * Measures the performance of task assignments.
 */
class PerformanceEngine
{
  public:
    virtual ~PerformanceEngine() = default;

    /**
     * Executes (or simulates, or predicts) one assignment and returns
     * its performance. Units are engine-defined; the paper's case
     * study uses processed packets per second (PPS). Higher is
     * better.
     */
    virtual double measure(const Assignment &assignment) = 0;

    /**
     * Measures a batch of assignments; out[i] receives the
     * performance of batch[i]. The default implementation is the
     * serial loop over measure(), so every engine supports batches;
     * engines with independent per-item evaluation override it (or
     * publish a parallelKernel()) for speed.
     *
     * @param batch Assignments to measure.
     * @param out   Results, same size as `batch`.
     */
    virtual void
    measureBatch(std::span<const Assignment> batch,
                 std::span<double> out)
    {
        STATSCHED_ASSERT(batch.size() == out.size(),
                         "batch/result size mismatch");
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = measure(batch[i]);
    }

    /**
     * Publishes a thread-safe kernel for one upcoming batch of
     * `batchSize` measurements, or an empty function if this engine
     * cannot evaluate batch items concurrently (the default).
     *
     * Creating a kernel *reserves* the engine's per-measurement state
     * (e.g. the simulator's noise indices) for the whole batch up
     * front, so the kernel is a pure function of (assignment, index):
     * any thread may evaluate any subset of indices in any order and
     * the results are identical to the serial path.
     */
    virtual BatchKernel
    parallelKernel(std::size_t batchSize)
    {
        (void)batchSize;
        return {};
    }

    /** @return a short description for reports. */
    virtual std::string name() const = 0;

    /**
     * Wall-clock cost of one measurement in seconds, used to report
     * experimentation time (the paper's measurements take ~1.5 s
     * each). Defaults to 0 for instantaneous engines.
     */
    virtual double secondsPerMeasurement() const { return 0.0; }

    /**
     * Accumulates this engine's statistics into `stats`. Decorators
     * add their counters and forward to the wrapped engine, so one
     * call on the top of a stack sees the whole composition. The
     * default contributes nothing.
     */
    virtual void collectStats(EngineStats &stats) const
    {
        (void)stats;
    }
};

/**
 * Decorator that counts measurements and batches and accumulates the
 * modeled experimentation time of the wrapped engine. All counters
 * are atomic, so the decorator may sit on either side of a
 * core::ParallelEngine.
 */
class MeteredEngine : public PerformanceEngine
{
  public:
    /** @param inner Engine to wrap; not owned. */
    explicit MeteredEngine(PerformanceEngine &inner) : inner_(inner) {}

    double
    measure(const Assignment &assignment) override
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        return inner_.measure(assignment);
    }

    void
    measureBatch(std::span<const Assignment> batch,
                 std::span<double> out) override
    {
        count_.fetch_add(batch.size(), std::memory_order_relaxed);
        batches_.fetch_add(1, std::memory_order_relaxed);
        inner_.measureBatch(batch, out);
    }

    BatchKernel
    parallelKernel(std::size_t batchSize) override
    {
        BatchKernel kernel = inner_.parallelKernel(batchSize);
        if (!kernel)
            return {};
        return [this, kernel](const Assignment &a, std::size_t i) {
            count_.fetch_add(1, std::memory_order_relaxed);
            return kernel(a, i);
        };
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(EngineStats &stats) const override
    {
        const std::uint64_t n =
            count_.load(std::memory_order_relaxed);
        stats.measurements += n;
        stats.batches += batches_.load(std::memory_order_relaxed);
        stats.modeledSeconds += static_cast<double>(n) *
            inner_.secondsPerMeasurement();
        inner_.collectStats(stats);
    }

    /**
     * @return the statistics of the whole stack below (and including)
     *         this decorator.
     *
     * Note on modeledSeconds: a MeteredEngine above a memoization
     * cache meters *requested* measurements; the cache subtracts the
     * hits it absorbed, so the total reflects time actually spent.
     */
    EngineStats
    stats() const
    {
        EngineStats s;
        collectStats(s);
        return s;
    }

  private:
    PerformanceEngine &inner_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> batches_{0};
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_PERFORMANCE_ENGINE_HH
