/**
 * @file
 * Abstract performance measurement of a task assignment.
 *
 * The statistical method is a black-box procedure over "run this
 * assignment and report its performance". PerformanceEngine is that
 * black box: the simulator (sim::SimulatedEngine), the real pinned-
 * thread executor (hw::PinnedThreadEngine), or — as Section 5.4 of
 * the paper suggests — a performance predictor can all stand behind
 * it without the statistics changing.
 */

#ifndef STATSCHED_CORE_PERFORMANCE_ENGINE_HH
#define STATSCHED_CORE_PERFORMANCE_ENGINE_HH

#include <cstdint>
#include <string>

#include "core/assignment.hh"

namespace statsched
{
namespace core
{

/**
 * Measures the performance of task assignments.
 */
class PerformanceEngine
{
  public:
    virtual ~PerformanceEngine() = default;

    /**
     * Executes (or simulates, or predicts) one assignment and returns
     * its performance. Units are engine-defined; the paper's case
     * study uses processed packets per second (PPS). Higher is
     * better.
     */
    virtual double measure(const Assignment &assignment) = 0;

    /** @return a short description for reports. */
    virtual std::string name() const = 0;

    /**
     * Wall-clock cost of one measurement in seconds, used to report
     * experimentation time (the paper's measurements take ~1.5 s
     * each). Defaults to 0 for instantaneous engines.
     */
    virtual double secondsPerMeasurement() const { return 0.0; }
};

/**
 * Decorator that counts measurements and accumulates the modeled
 * experimentation time of the wrapped engine.
 */
class MeteredEngine : public PerformanceEngine
{
  public:
    /** @param inner Engine to wrap; not owned. */
    explicit MeteredEngine(PerformanceEngine &inner) : inner_(inner) {}

    double
    measure(const Assignment &assignment) override
    {
        ++count_;
        return inner_.measure(assignment);
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    /** @return measurements performed through this decorator. */
    std::uint64_t measurementCount() const { return count_; }

    /** @return modeled experimentation seconds so far. */
    double
    modeledSeconds() const
    {
        return static_cast<double>(count_) *
            inner_.secondsPerMeasurement();
    }

  private:
    PerformanceEngine &inner_;
    std::uint64_t count_ = 0;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_PERFORMANCE_ENGINE_HH
