file(REMOVE_RECURSE
  "libstatsched_sim.a"
)
