file(REMOVE_RECURSE
  "CMakeFiles/statsched_sim.dir/benchmarks.cc.o"
  "CMakeFiles/statsched_sim.dir/benchmarks.cc.o.d"
  "CMakeFiles/statsched_sim.dir/cache.cc.o"
  "CMakeFiles/statsched_sim.dir/cache.cc.o.d"
  "CMakeFiles/statsched_sim.dir/contention.cc.o"
  "CMakeFiles/statsched_sim.dir/contention.cc.o.d"
  "CMakeFiles/statsched_sim.dir/cycle_sim.cc.o"
  "CMakeFiles/statsched_sim.dir/cycle_sim.cc.o.d"
  "CMakeFiles/statsched_sim.dir/engine.cc.o"
  "CMakeFiles/statsched_sim.dir/engine.cc.o.d"
  "CMakeFiles/statsched_sim.dir/workload.cc.o"
  "CMakeFiles/statsched_sim.dir/workload.cc.o.d"
  "libstatsched_sim.a"
  "libstatsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
