
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/benchmarks.cc" "src/sim/CMakeFiles/statsched_sim.dir/benchmarks.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/benchmarks.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/statsched_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/contention.cc" "src/sim/CMakeFiles/statsched_sim.dir/contention.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/contention.cc.o.d"
  "/root/repo/src/sim/cycle_sim.cc" "src/sim/CMakeFiles/statsched_sim.dir/cycle_sim.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/cycle_sim.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/statsched_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/statsched_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/statsched_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
