# Empty dependencies file for statsched_sim.
# This may be replaced when dependencies are built.
