file(REMOVE_RECURSE
  "CMakeFiles/statsched_hw.dir/pinned_executor.cc.o"
  "CMakeFiles/statsched_hw.dir/pinned_executor.cc.o.d"
  "libstatsched_hw.a"
  "libstatsched_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
