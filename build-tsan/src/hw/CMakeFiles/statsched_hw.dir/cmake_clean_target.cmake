file(REMOVE_RECURSE
  "libstatsched_hw.a"
)
