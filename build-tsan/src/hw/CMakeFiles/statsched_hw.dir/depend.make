# Empty dependencies file for statsched_hw.
# This may be replaced when dependencies are built.
