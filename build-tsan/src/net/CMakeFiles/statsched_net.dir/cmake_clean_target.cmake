file(REMOVE_RECURSE
  "libstatsched_net.a"
)
