file(REMOVE_RECURSE
  "CMakeFiles/statsched_net.dir/aho_corasick.cc.o"
  "CMakeFiles/statsched_net.dir/aho_corasick.cc.o.d"
  "CMakeFiles/statsched_net.dir/analyzer.cc.o"
  "CMakeFiles/statsched_net.dir/analyzer.cc.o.d"
  "CMakeFiles/statsched_net.dir/checksum.cc.o"
  "CMakeFiles/statsched_net.dir/checksum.cc.o.d"
  "CMakeFiles/statsched_net.dir/flow_table.cc.o"
  "CMakeFiles/statsched_net.dir/flow_table.cc.o.d"
  "CMakeFiles/statsched_net.dir/generator.cc.o"
  "CMakeFiles/statsched_net.dir/generator.cc.o.d"
  "CMakeFiles/statsched_net.dir/ipfwd.cc.o"
  "CMakeFiles/statsched_net.dir/ipfwd.cc.o.d"
  "CMakeFiles/statsched_net.dir/keywords.cc.o"
  "CMakeFiles/statsched_net.dir/keywords.cc.o.d"
  "CMakeFiles/statsched_net.dir/lpm_trie.cc.o"
  "CMakeFiles/statsched_net.dir/lpm_trie.cc.o.d"
  "CMakeFiles/statsched_net.dir/packet.cc.o"
  "CMakeFiles/statsched_net.dir/packet.cc.o.d"
  "CMakeFiles/statsched_net.dir/pipeline.cc.o"
  "CMakeFiles/statsched_net.dir/pipeline.cc.o.d"
  "libstatsched_net.a"
  "libstatsched_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
