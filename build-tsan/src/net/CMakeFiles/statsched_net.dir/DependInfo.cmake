
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/aho_corasick.cc" "src/net/CMakeFiles/statsched_net.dir/aho_corasick.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/aho_corasick.cc.o.d"
  "/root/repo/src/net/analyzer.cc" "src/net/CMakeFiles/statsched_net.dir/analyzer.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/analyzer.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/statsched_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/flow_table.cc" "src/net/CMakeFiles/statsched_net.dir/flow_table.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/flow_table.cc.o.d"
  "/root/repo/src/net/generator.cc" "src/net/CMakeFiles/statsched_net.dir/generator.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/generator.cc.o.d"
  "/root/repo/src/net/ipfwd.cc" "src/net/CMakeFiles/statsched_net.dir/ipfwd.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/ipfwd.cc.o.d"
  "/root/repo/src/net/keywords.cc" "src/net/CMakeFiles/statsched_net.dir/keywords.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/keywords.cc.o.d"
  "/root/repo/src/net/lpm_trie.cc" "src/net/CMakeFiles/statsched_net.dir/lpm_trie.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/lpm_trie.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/statsched_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/packet.cc.o.d"
  "/root/repo/src/net/pipeline.cc" "src/net/CMakeFiles/statsched_net.dir/pipeline.cc.o" "gcc" "src/net/CMakeFiles/statsched_net.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
