# Empty dependencies file for statsched_net.
# This may be replaced when dependencies are built.
