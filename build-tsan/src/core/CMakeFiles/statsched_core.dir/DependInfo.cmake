
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/statsched_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/assignment_space.cc" "src/core/CMakeFiles/statsched_core.dir/assignment_space.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/assignment_space.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/statsched_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/capture_probability.cc" "src/core/CMakeFiles/statsched_core.dir/capture_probability.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/capture_probability.cc.o.d"
  "/root/repo/src/core/enumerator.cc" "src/core/CMakeFiles/statsched_core.dir/enumerator.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/enumerator.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/statsched_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/iterative.cc" "src/core/CMakeFiles/statsched_core.dir/iterative.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/iterative.cc.o.d"
  "/root/repo/src/core/local_search.cc" "src/core/CMakeFiles/statsched_core.dir/local_search.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/local_search.cc.o.d"
  "/root/repo/src/core/memoizing_engine.cc" "src/core/CMakeFiles/statsched_core.dir/memoizing_engine.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/memoizing_engine.cc.o.d"
  "/root/repo/src/core/parallel_engine.cc" "src/core/CMakeFiles/statsched_core.dir/parallel_engine.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/parallel_engine.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/statsched_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/sampler.cc" "src/core/CMakeFiles/statsched_core.dir/sampler.cc.o" "gcc" "src/core/CMakeFiles/statsched_core.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
