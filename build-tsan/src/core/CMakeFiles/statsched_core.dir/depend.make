# Empty dependencies file for statsched_core.
# This may be replaced when dependencies are built.
