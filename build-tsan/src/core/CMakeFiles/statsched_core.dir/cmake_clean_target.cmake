file(REMOVE_RECURSE
  "libstatsched_core.a"
)
