file(REMOVE_RECURSE
  "CMakeFiles/statsched_core.dir/assignment.cc.o"
  "CMakeFiles/statsched_core.dir/assignment.cc.o.d"
  "CMakeFiles/statsched_core.dir/assignment_space.cc.o"
  "CMakeFiles/statsched_core.dir/assignment_space.cc.o.d"
  "CMakeFiles/statsched_core.dir/baselines.cc.o"
  "CMakeFiles/statsched_core.dir/baselines.cc.o.d"
  "CMakeFiles/statsched_core.dir/capture_probability.cc.o"
  "CMakeFiles/statsched_core.dir/capture_probability.cc.o.d"
  "CMakeFiles/statsched_core.dir/enumerator.cc.o"
  "CMakeFiles/statsched_core.dir/enumerator.cc.o.d"
  "CMakeFiles/statsched_core.dir/estimator.cc.o"
  "CMakeFiles/statsched_core.dir/estimator.cc.o.d"
  "CMakeFiles/statsched_core.dir/iterative.cc.o"
  "CMakeFiles/statsched_core.dir/iterative.cc.o.d"
  "CMakeFiles/statsched_core.dir/local_search.cc.o"
  "CMakeFiles/statsched_core.dir/local_search.cc.o.d"
  "CMakeFiles/statsched_core.dir/memoizing_engine.cc.o"
  "CMakeFiles/statsched_core.dir/memoizing_engine.cc.o.d"
  "CMakeFiles/statsched_core.dir/parallel_engine.cc.o"
  "CMakeFiles/statsched_core.dir/parallel_engine.cc.o.d"
  "CMakeFiles/statsched_core.dir/predictor.cc.o"
  "CMakeFiles/statsched_core.dir/predictor.cc.o.d"
  "CMakeFiles/statsched_core.dir/sampler.cc.o"
  "CMakeFiles/statsched_core.dir/sampler.cc.o.d"
  "libstatsched_core.a"
  "libstatsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
