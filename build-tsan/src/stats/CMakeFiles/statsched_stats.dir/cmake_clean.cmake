file(REMOVE_RECURSE
  "CMakeFiles/statsched_stats.dir/bootstrap.cc.o"
  "CMakeFiles/statsched_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/statsched_stats.dir/descriptive.cc.o"
  "CMakeFiles/statsched_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/statsched_stats.dir/diagnostics.cc.o"
  "CMakeFiles/statsched_stats.dir/diagnostics.cc.o.d"
  "CMakeFiles/statsched_stats.dir/ecdf.cc.o"
  "CMakeFiles/statsched_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/statsched_stats.dir/gev.cc.o"
  "CMakeFiles/statsched_stats.dir/gev.cc.o.d"
  "CMakeFiles/statsched_stats.dir/gpd.cc.o"
  "CMakeFiles/statsched_stats.dir/gpd.cc.o.d"
  "CMakeFiles/statsched_stats.dir/gpd_fit.cc.o"
  "CMakeFiles/statsched_stats.dir/gpd_fit.cc.o.d"
  "CMakeFiles/statsched_stats.dir/linear_solve.cc.o"
  "CMakeFiles/statsched_stats.dir/linear_solve.cc.o.d"
  "CMakeFiles/statsched_stats.dir/mean_excess.cc.o"
  "CMakeFiles/statsched_stats.dir/mean_excess.cc.o.d"
  "CMakeFiles/statsched_stats.dir/nelder_mead.cc.o"
  "CMakeFiles/statsched_stats.dir/nelder_mead.cc.o.d"
  "CMakeFiles/statsched_stats.dir/pot.cc.o"
  "CMakeFiles/statsched_stats.dir/pot.cc.o.d"
  "CMakeFiles/statsched_stats.dir/special_functions.cc.o"
  "CMakeFiles/statsched_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/statsched_stats.dir/threshold.cc.o"
  "CMakeFiles/statsched_stats.dir/threshold.cc.o.d"
  "libstatsched_stats.a"
  "libstatsched_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
