# Empty dependencies file for statsched_stats.
# This may be replaced when dependencies are built.
