file(REMOVE_RECURSE
  "libstatsched_stats.a"
)
