
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cc" "src/stats/CMakeFiles/statsched_stats.dir/bootstrap.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/statsched_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/diagnostics.cc" "src/stats/CMakeFiles/statsched_stats.dir/diagnostics.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/diagnostics.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/statsched_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/gev.cc" "src/stats/CMakeFiles/statsched_stats.dir/gev.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/gev.cc.o.d"
  "/root/repo/src/stats/gpd.cc" "src/stats/CMakeFiles/statsched_stats.dir/gpd.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/gpd.cc.o.d"
  "/root/repo/src/stats/gpd_fit.cc" "src/stats/CMakeFiles/statsched_stats.dir/gpd_fit.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/gpd_fit.cc.o.d"
  "/root/repo/src/stats/linear_solve.cc" "src/stats/CMakeFiles/statsched_stats.dir/linear_solve.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/linear_solve.cc.o.d"
  "/root/repo/src/stats/mean_excess.cc" "src/stats/CMakeFiles/statsched_stats.dir/mean_excess.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/mean_excess.cc.o.d"
  "/root/repo/src/stats/nelder_mead.cc" "src/stats/CMakeFiles/statsched_stats.dir/nelder_mead.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/nelder_mead.cc.o.d"
  "/root/repo/src/stats/pot.cc" "src/stats/CMakeFiles/statsched_stats.dir/pot.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/pot.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/statsched_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/special_functions.cc.o.d"
  "/root/repo/src/stats/threshold.cc" "src/stats/CMakeFiles/statsched_stats.dir/threshold.cc.o" "gcc" "src/stats/CMakeFiles/statsched_stats.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
