file(REMOVE_RECURSE
  "CMakeFiles/statsched_num.dir/big_uint.cc.o"
  "CMakeFiles/statsched_num.dir/big_uint.cc.o.d"
  "CMakeFiles/statsched_num.dir/duration.cc.o"
  "CMakeFiles/statsched_num.dir/duration.cc.o.d"
  "libstatsched_num.a"
  "libstatsched_num.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
