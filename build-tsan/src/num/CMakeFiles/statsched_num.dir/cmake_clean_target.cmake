file(REMOVE_RECURSE
  "libstatsched_num.a"
)
