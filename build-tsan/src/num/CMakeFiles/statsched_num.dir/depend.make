# Empty dependencies file for statsched_num.
# This may be replaced when dependencies are built.
