# Empty compiler generated dependencies file for iterative_tuning.
# This may be replaced when dependencies are built.
