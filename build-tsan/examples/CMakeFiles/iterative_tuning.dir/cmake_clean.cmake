file(REMOVE_RECURSE
  "CMakeFiles/iterative_tuning.dir/iterative_tuning.cpp.o"
  "CMakeFiles/iterative_tuning.dir/iterative_tuning.cpp.o.d"
  "iterative_tuning"
  "iterative_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
