# Empty dependencies file for iterative_tuning.
# This may be replaced when dependencies are built.
