file(REMOVE_RECURSE
  "CMakeFiles/workload_selection.dir/workload_selection.cpp.o"
  "CMakeFiles/workload_selection.dir/workload_selection.cpp.o.d"
  "workload_selection"
  "workload_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
