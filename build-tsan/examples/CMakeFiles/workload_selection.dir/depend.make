# Empty dependencies file for workload_selection.
# This may be replaced when dependencies are built.
