file(REMOVE_RECURSE
  "CMakeFiles/pinned_threads.dir/pinned_threads.cpp.o"
  "CMakeFiles/pinned_threads.dir/pinned_threads.cpp.o.d"
  "pinned_threads"
  "pinned_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pinned_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
