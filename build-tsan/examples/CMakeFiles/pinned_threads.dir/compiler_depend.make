# Empty compiler generated dependencies file for pinned_threads.
# This may be replaced when dependencies are built.
