# Empty dependencies file for statsched_cli.
# This may be replaced when dependencies are built.
