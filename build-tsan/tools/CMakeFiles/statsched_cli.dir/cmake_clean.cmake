file(REMOVE_RECURSE
  "CMakeFiles/statsched_cli.dir/statsched_cli.cc.o"
  "CMakeFiles/statsched_cli.dir/statsched_cli.cc.o.d"
  "statsched_cli"
  "statsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
