# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build-tsan/tools/statsched_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_count "/root/repo/build-tsan/tools/statsched_cli" "count" "--tasks" "24")
set_tests_properties(cli_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_count_custom_topology "/root/repo/build-tsan/tools/statsched_cli" "count" "--tasks" "6" "--topology" "4x2x2")
set_tests_properties(cli_count_custom_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_capture_prob "/root/repo/build-tsan/tools/statsched_cli" "capture" "--percent" "1" "--samples" "500")
set_tests_properties(cli_capture_prob PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_capture_size "/root/repo/build-tsan/tools/statsched_cli" "capture" "--percent" "2" "--target" "0.99")
set_tests_properties(cli_capture_size PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_enumerate "/root/repo/build-tsan/tools/statsched_cli" "enumerate" "--tasks" "3")
set_tests_properties(cli_enumerate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baselines "/root/repo/build-tsan/tools/statsched_cli" "baselines" "--benchmark" "intmul" "--instances" "2")
set_tests_properties(cli_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "/root/repo/build-tsan/tools/statsched_cli" "estimate" "--benchmark" "ipfwd-l1" "--samples" "400" "--seed" "9")
set_tests_properties(cli_estimate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_iterate "/root/repo/build-tsan/tools/statsched_cli" "iterate" "--benchmark" "aho" "--loss" "10" "--ninit" "300" "--ndelta" "100" "--max" "2000")
set_tests_properties(cli_iterate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_parallel "/root/repo/build-tsan/tools/statsched_cli" "estimate" "--benchmark=ipfwd-l1" "--samples=400" "--seed=9" "--threads=4")
set_tests_properties(cli_estimate_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate_no_memoize "/root/repo/build-tsan/tools/statsched_cli" "estimate" "--benchmark" "ipfwd-l1" "--samples" "400" "--seed" "9" "--threads" "1" "--no-memoize")
set_tests_properties(cli_estimate_no_memoize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_option "/root/repo/build-tsan/tools/statsched_cli" "estimate" "--bogus" "1")
set_tests_properties(cli_rejects_unknown_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_value "/root/repo/build-tsan/tools/statsched_cli" "estimate" "--samples")
set_tests_properties(cli_rejects_missing_value PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;37;add_test;/root/repo/tools/CMakeLists.txt;0;")
