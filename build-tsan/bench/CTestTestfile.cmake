# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig2 "/root/repo/build-tsan/bench/fig2_capture_probability")
set_tests_properties(bench_smoke_fig2 PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_parallel_speedup "/root/repo/build-tsan/bench/bench_parallel_speedup" "500" "4")
set_tests_properties(bench_smoke_parallel_speedup PROPERTIES  LABELS "bench_smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
