file(REMOVE_RECURSE
  "CMakeFiles/table1_assignment_counts.dir/table1_assignment_counts.cc.o"
  "CMakeFiles/table1_assignment_counts.dir/table1_assignment_counts.cc.o.d"
  "table1_assignment_counts"
  "table1_assignment_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_assignment_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
