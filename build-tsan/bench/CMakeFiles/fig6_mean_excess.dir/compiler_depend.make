# Empty compiler generated dependencies file for fig6_mean_excess.
# This may be replaced when dependencies are built.
