file(REMOVE_RECURSE
  "CMakeFiles/fig6_mean_excess.dir/fig6_mean_excess.cc.o"
  "CMakeFiles/fig6_mean_excess.dir/fig6_mean_excess.cc.o.d"
  "fig6_mean_excess"
  "fig6_mean_excess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mean_excess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
