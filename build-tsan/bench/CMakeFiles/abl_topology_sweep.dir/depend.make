# Empty dependencies file for abl_topology_sweep.
# This may be replaced when dependencies are built.
