file(REMOVE_RECURSE
  "CMakeFiles/abl_topology_sweep.dir/abl_topology_sweep.cc.o"
  "CMakeFiles/abl_topology_sweep.dir/abl_topology_sweep.cc.o.d"
  "abl_topology_sweep"
  "abl_topology_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_topology_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
