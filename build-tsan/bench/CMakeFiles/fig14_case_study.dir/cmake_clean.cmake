file(REMOVE_RECURSE
  "CMakeFiles/fig14_case_study.dir/fig14_case_study.cc.o"
  "CMakeFiles/fig14_case_study.dir/fig14_case_study.cc.o.d"
  "fig14_case_study"
  "fig14_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
