
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_speedup.cc" "bench/CMakeFiles/bench_parallel_speedup.dir/bench_parallel_speedup.cc.o" "gcc" "bench/CMakeFiles/bench_parallel_speedup.dir/bench_parallel_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/statsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/statsched_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
