file(REMOVE_RECURSE
  "CMakeFiles/abl_estimator_comparison.dir/abl_estimator_comparison.cc.o"
  "CMakeFiles/abl_estimator_comparison.dir/abl_estimator_comparison.cc.o.d"
  "abl_estimator_comparison"
  "abl_estimator_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_estimator_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
