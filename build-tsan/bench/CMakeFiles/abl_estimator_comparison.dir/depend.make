# Empty dependencies file for abl_estimator_comparison.
# This may be replaced when dependencies are built.
