file(REMOVE_RECURSE
  "CMakeFiles/abl_local_search.dir/abl_local_search.cc.o"
  "CMakeFiles/abl_local_search.dir/abl_local_search.cc.o.d"
  "abl_local_search"
  "abl_local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
