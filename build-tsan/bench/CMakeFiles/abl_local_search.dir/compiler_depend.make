# Empty compiler generated dependencies file for abl_local_search.
# This may be replaced when dependencies are built.
