# Empty compiler generated dependencies file for fig2_capture_probability.
# This may be replaced when dependencies are built.
