file(REMOVE_RECURSE
  "CMakeFiles/fig2_capture_probability.dir/fig2_capture_probability.cc.o"
  "CMakeFiles/fig2_capture_probability.dir/fig2_capture_probability.cc.o.d"
  "fig2_capture_probability"
  "fig2_capture_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_capture_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
