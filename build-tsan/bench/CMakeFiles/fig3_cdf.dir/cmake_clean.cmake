file(REMOVE_RECURSE
  "CMakeFiles/fig3_cdf.dir/fig3_cdf.cc.o"
  "CMakeFiles/fig3_cdf.dir/fig3_cdf.cc.o.d"
  "fig3_cdf"
  "fig3_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
