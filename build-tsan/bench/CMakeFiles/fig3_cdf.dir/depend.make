# Empty dependencies file for fig3_cdf.
# This may be replaced when dependencies are built.
