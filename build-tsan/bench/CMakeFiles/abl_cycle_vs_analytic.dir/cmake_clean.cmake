file(REMOVE_RECURSE
  "CMakeFiles/abl_cycle_vs_analytic.dir/abl_cycle_vs_analytic.cc.o"
  "CMakeFiles/abl_cycle_vs_analytic.dir/abl_cycle_vs_analytic.cc.o.d"
  "abl_cycle_vs_analytic"
  "abl_cycle_vs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cycle_vs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
