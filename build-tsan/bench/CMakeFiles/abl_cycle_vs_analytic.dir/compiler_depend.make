# Empty compiler generated dependencies file for abl_cycle_vs_analytic.
# This may be replaced when dependencies are built.
