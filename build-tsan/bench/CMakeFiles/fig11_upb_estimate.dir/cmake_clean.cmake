file(REMOVE_RECURSE
  "CMakeFiles/fig11_upb_estimate.dir/fig11_upb_estimate.cc.o"
  "CMakeFiles/fig11_upb_estimate.dir/fig11_upb_estimate.cc.o.d"
  "fig11_upb_estimate"
  "fig11_upb_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_upb_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
