# Empty compiler generated dependencies file for fig11_upb_estimate.
# This may be replaced when dependencies are built.
