file(REMOVE_RECURSE
  "CMakeFiles/abl_gev_vs_pot.dir/abl_gev_vs_pot.cc.o"
  "CMakeFiles/abl_gev_vs_pot.dir/abl_gev_vs_pot.cc.o.d"
  "abl_gev_vs_pot"
  "abl_gev_vs_pot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gev_vs_pot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
