# Empty compiler generated dependencies file for abl_gev_vs_pot.
# This may be replaced when dependencies are built.
