# Empty dependencies file for fig12_improvement.
# This may be replaced when dependencies are built.
