file(REMOVE_RECURSE
  "CMakeFiles/fig12_improvement.dir/fig12_improvement.cc.o"
  "CMakeFiles/fig12_improvement.dir/fig12_improvement.cc.o.d"
  "fig12_improvement"
  "fig12_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
