file(REMOVE_RECURSE
  "CMakeFiles/abl_noise_sensitivity.dir/abl_noise_sensitivity.cc.o"
  "CMakeFiles/abl_noise_sensitivity.dir/abl_noise_sensitivity.cc.o.d"
  "abl_noise_sensitivity"
  "abl_noise_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_noise_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
