# Empty dependencies file for abl_noise_sensitivity.
# This may be replaced when dependencies are built.
