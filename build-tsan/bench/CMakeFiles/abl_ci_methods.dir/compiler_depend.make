# Empty compiler generated dependencies file for abl_ci_methods.
# This may be replaced when dependencies are built.
