file(REMOVE_RECURSE
  "CMakeFiles/abl_ci_methods.dir/abl_ci_methods.cc.o"
  "CMakeFiles/abl_ci_methods.dir/abl_ci_methods.cc.o.d"
  "abl_ci_methods"
  "abl_ci_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ci_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
