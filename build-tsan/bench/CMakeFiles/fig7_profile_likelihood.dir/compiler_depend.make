# Empty compiler generated dependencies file for fig7_profile_likelihood.
# This may be replaced when dependencies are built.
