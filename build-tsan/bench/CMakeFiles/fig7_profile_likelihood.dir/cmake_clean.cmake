file(REMOVE_RECURSE
  "CMakeFiles/fig7_profile_likelihood.dir/fig7_profile_likelihood.cc.o"
  "CMakeFiles/fig7_profile_likelihood.dir/fig7_profile_likelihood.cc.o.d"
  "fig7_profile_likelihood"
  "fig7_profile_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_profile_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
