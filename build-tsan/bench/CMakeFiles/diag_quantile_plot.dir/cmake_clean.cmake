file(REMOVE_RECURSE
  "CMakeFiles/diag_quantile_plot.dir/diag_quantile_plot.cc.o"
  "CMakeFiles/diag_quantile_plot.dir/diag_quantile_plot.cc.o.d"
  "diag_quantile_plot"
  "diag_quantile_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_quantile_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
