# Empty dependencies file for diag_quantile_plot.
# This may be replaced when dependencies are built.
