file(REMOVE_RECURSE
  "CMakeFiles/fig10_best_in_sample.dir/fig10_best_in_sample.cc.o"
  "CMakeFiles/fig10_best_in_sample.dir/fig10_best_in_sample.cc.o.d"
  "fig10_best_in_sample"
  "fig10_best_in_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_best_in_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
