# Empty compiler generated dependencies file for fig10_best_in_sample.
# This may be replaced when dependencies are built.
