file(REMOVE_RECURSE
  "CMakeFiles/abl_threshold_sensitivity.dir/abl_threshold_sensitivity.cc.o"
  "CMakeFiles/abl_threshold_sensitivity.dir/abl_threshold_sensitivity.cc.o.d"
  "abl_threshold_sensitivity"
  "abl_threshold_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
