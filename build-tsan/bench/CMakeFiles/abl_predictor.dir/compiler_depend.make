# Empty compiler generated dependencies file for abl_predictor.
# This may be replaced when dependencies are built.
