file(REMOVE_RECURSE
  "CMakeFiles/abl_predictor.dir/abl_predictor.cc.o"
  "CMakeFiles/abl_predictor.dir/abl_predictor.cc.o.d"
  "abl_predictor"
  "abl_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
