file(REMOVE_RECURSE
  "CMakeFiles/fig1_naive_linux_optimal.dir/fig1_naive_linux_optimal.cc.o"
  "CMakeFiles/fig1_naive_linux_optimal.dir/fig1_naive_linux_optimal.cc.o.d"
  "fig1_naive_linux_optimal"
  "fig1_naive_linux_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_naive_linux_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
