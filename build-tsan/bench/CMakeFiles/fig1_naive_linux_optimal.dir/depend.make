# Empty dependencies file for fig1_naive_linux_optimal.
# This may be replaced when dependencies are built.
