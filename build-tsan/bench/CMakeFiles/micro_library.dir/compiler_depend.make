# Empty compiler generated dependencies file for micro_library.
# This may be replaced when dependencies are built.
