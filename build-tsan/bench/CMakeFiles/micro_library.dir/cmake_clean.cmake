file(REMOVE_RECURSE
  "CMakeFiles/micro_library.dir/micro_library.cc.o"
  "CMakeFiles/micro_library.dir/micro_library.cc.o.d"
  "micro_library"
  "micro_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
