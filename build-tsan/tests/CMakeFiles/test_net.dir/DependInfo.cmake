
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_aho_corasick.cc" "tests/CMakeFiles/test_net.dir/net/test_aho_corasick.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_aho_corasick.cc.o.d"
  "/root/repo/tests/net/test_analyzer.cc" "tests/CMakeFiles/test_net.dir/net/test_analyzer.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_analyzer.cc.o.d"
  "/root/repo/tests/net/test_flow_table.cc" "tests/CMakeFiles/test_net.dir/net/test_flow_table.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_flow_table.cc.o.d"
  "/root/repo/tests/net/test_generator.cc" "tests/CMakeFiles/test_net.dir/net/test_generator.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_generator.cc.o.d"
  "/root/repo/tests/net/test_ipfwd.cc" "tests/CMakeFiles/test_net.dir/net/test_ipfwd.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ipfwd.cc.o.d"
  "/root/repo/tests/net/test_lpm_trie.cc" "tests/CMakeFiles/test_net.dir/net/test_lpm_trie.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_lpm_trie.cc.o.d"
  "/root/repo/tests/net/test_packet.cc" "tests/CMakeFiles/test_net.dir/net/test_packet.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_packet.cc.o.d"
  "/root/repo/tests/net/test_pipeline.cc" "tests/CMakeFiles/test_net.dir/net/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_pipeline.cc.o.d"
  "/root/repo/tests/net/test_spsc_queue.cc" "tests/CMakeFiles/test_net.dir/net/test_spsc_queue.cc.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_spsc_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hw/CMakeFiles/statsched_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/statsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/statsched_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
