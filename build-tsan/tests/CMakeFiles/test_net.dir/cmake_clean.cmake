file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_aho_corasick.cc.o"
  "CMakeFiles/test_net.dir/net/test_aho_corasick.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_analyzer.cc.o"
  "CMakeFiles/test_net.dir/net/test_analyzer.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_flow_table.cc.o"
  "CMakeFiles/test_net.dir/net/test_flow_table.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_generator.cc.o"
  "CMakeFiles/test_net.dir/net/test_generator.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_ipfwd.cc.o"
  "CMakeFiles/test_net.dir/net/test_ipfwd.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_lpm_trie.cc.o"
  "CMakeFiles/test_net.dir/net/test_lpm_trie.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_packet.cc.o"
  "CMakeFiles/test_net.dir/net/test_packet.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_pipeline.cc.o"
  "CMakeFiles/test_net.dir/net/test_pipeline.cc.o.d"
  "CMakeFiles/test_net.dir/net/test_spsc_queue.cc.o"
  "CMakeFiles/test_net.dir/net/test_spsc_queue.cc.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
