
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_bootstrap.cc" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cc.o.d"
  "/root/repo/tests/stats/test_descriptive.cc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cc.o.d"
  "/root/repo/tests/stats/test_diagnostics.cc" "tests/CMakeFiles/test_stats.dir/stats/test_diagnostics.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_diagnostics.cc.o.d"
  "/root/repo/tests/stats/test_ecdf.cc" "tests/CMakeFiles/test_stats.dir/stats/test_ecdf.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_ecdf.cc.o.d"
  "/root/repo/tests/stats/test_gev.cc" "tests/CMakeFiles/test_stats.dir/stats/test_gev.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_gev.cc.o.d"
  "/root/repo/tests/stats/test_gpd.cc" "tests/CMakeFiles/test_stats.dir/stats/test_gpd.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_gpd.cc.o.d"
  "/root/repo/tests/stats/test_gpd_fit.cc" "tests/CMakeFiles/test_stats.dir/stats/test_gpd_fit.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_gpd_fit.cc.o.d"
  "/root/repo/tests/stats/test_linear_solve.cc" "tests/CMakeFiles/test_stats.dir/stats/test_linear_solve.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_linear_solve.cc.o.d"
  "/root/repo/tests/stats/test_mean_excess.cc" "tests/CMakeFiles/test_stats.dir/stats/test_mean_excess.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_mean_excess.cc.o.d"
  "/root/repo/tests/stats/test_nelder_mead.cc" "tests/CMakeFiles/test_stats.dir/stats/test_nelder_mead.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_nelder_mead.cc.o.d"
  "/root/repo/tests/stats/test_pot.cc" "tests/CMakeFiles/test_stats.dir/stats/test_pot.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_pot.cc.o.d"
  "/root/repo/tests/stats/test_rng.cc" "tests/CMakeFiles/test_stats.dir/stats/test_rng.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_rng.cc.o.d"
  "/root/repo/tests/stats/test_special_functions.cc" "tests/CMakeFiles/test_stats.dir/stats/test_special_functions.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_special_functions.cc.o.d"
  "/root/repo/tests/stats/test_tail_quantile.cc" "tests/CMakeFiles/test_stats.dir/stats/test_tail_quantile.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_tail_quantile.cc.o.d"
  "/root/repo/tests/stats/test_threshold.cc" "tests/CMakeFiles/test_stats.dir/stats/test_threshold.cc.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hw/CMakeFiles/statsched_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/statsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/statsched_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
