file(REMOVE_RECURSE
  "CMakeFiles/test_num.dir/num/test_big_uint.cc.o"
  "CMakeFiles/test_num.dir/num/test_big_uint.cc.o.d"
  "CMakeFiles/test_num.dir/num/test_duration.cc.o"
  "CMakeFiles/test_num.dir/num/test_duration.cc.o.d"
  "test_num"
  "test_num.pdb"
  "test_num[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_num.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
