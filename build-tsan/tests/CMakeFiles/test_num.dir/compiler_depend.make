# Empty compiler generated dependencies file for test_num.
# This may be replaced when dependencies are built.
