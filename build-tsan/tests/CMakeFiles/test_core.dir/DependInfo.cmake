
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_assignment.cc" "tests/CMakeFiles/test_core.dir/core/test_assignment.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_assignment.cc.o.d"
  "/root/repo/tests/core/test_assignment_space.cc" "tests/CMakeFiles/test_core.dir/core/test_assignment_space.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_assignment_space.cc.o.d"
  "/root/repo/tests/core/test_baselines.cc" "tests/CMakeFiles/test_core.dir/core/test_baselines.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baselines.cc.o.d"
  "/root/repo/tests/core/test_capture_probability.cc" "tests/CMakeFiles/test_core.dir/core/test_capture_probability.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_capture_probability.cc.o.d"
  "/root/repo/tests/core/test_engines.cc" "tests/CMakeFiles/test_core.dir/core/test_engines.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_engines.cc.o.d"
  "/root/repo/tests/core/test_enumerator.cc" "tests/CMakeFiles/test_core.dir/core/test_enumerator.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_enumerator.cc.o.d"
  "/root/repo/tests/core/test_estimator.cc" "tests/CMakeFiles/test_core.dir/core/test_estimator.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_estimator.cc.o.d"
  "/root/repo/tests/core/test_local_search.cc" "tests/CMakeFiles/test_core.dir/core/test_local_search.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_local_search.cc.o.d"
  "/root/repo/tests/core/test_predictor.cc" "tests/CMakeFiles/test_core.dir/core/test_predictor.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_predictor.cc.o.d"
  "/root/repo/tests/core/test_sampler.cc" "tests/CMakeFiles/test_core.dir/core/test_sampler.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sampler.cc.o.d"
  "/root/repo/tests/core/test_shape_properties.cc" "tests/CMakeFiles/test_core.dir/core/test_shape_properties.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_shape_properties.cc.o.d"
  "/root/repo/tests/core/test_topology.cc" "tests/CMakeFiles/test_core.dir/core/test_topology.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hw/CMakeFiles/statsched_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/statsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/statsched_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
