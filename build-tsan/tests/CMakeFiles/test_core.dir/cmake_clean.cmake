file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_assignment.cc.o"
  "CMakeFiles/test_core.dir/core/test_assignment.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_assignment_space.cc.o"
  "CMakeFiles/test_core.dir/core/test_assignment_space.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_baselines.cc.o"
  "CMakeFiles/test_core.dir/core/test_baselines.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_capture_probability.cc.o"
  "CMakeFiles/test_core.dir/core/test_capture_probability.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_engines.cc.o"
  "CMakeFiles/test_core.dir/core/test_engines.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_enumerator.cc.o"
  "CMakeFiles/test_core.dir/core/test_enumerator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_estimator.cc.o"
  "CMakeFiles/test_core.dir/core/test_estimator.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_local_search.cc.o"
  "CMakeFiles/test_core.dir/core/test_local_search.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_predictor.cc.o"
  "CMakeFiles/test_core.dir/core/test_predictor.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_sampler.cc.o"
  "CMakeFiles/test_core.dir/core/test_sampler.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_shape_properties.cc.o"
  "CMakeFiles/test_core.dir/core/test_shape_properties.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_topology.cc.o"
  "CMakeFiles/test_core.dir/core/test_topology.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
