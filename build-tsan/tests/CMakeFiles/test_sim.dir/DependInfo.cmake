
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cache.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "/root/repo/tests/sim/test_contention.cc" "tests/CMakeFiles/test_sim.dir/sim/test_contention.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_contention.cc.o.d"
  "/root/repo/tests/sim/test_cycle_sim.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cycle_sim.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cycle_sim.cc.o.d"
  "/root/repo/tests/sim/test_engine.cc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cc.o.d"
  "/root/repo/tests/sim/test_solver_properties.cc" "tests/CMakeFiles/test_sim.dir/sim/test_solver_properties.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_solver_properties.cc.o.d"
  "/root/repo/tests/sim/test_workload.cc" "tests/CMakeFiles/test_sim.dir/sim/test_workload.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/hw/CMakeFiles/statsched_hw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/statsched_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/statsched_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/statsched_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/statsched_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/num/CMakeFiles/statsched_num.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
