file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_contention.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_contention.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cycle_sim.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cycle_sim.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_engine.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_solver_properties.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_solver_properties.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_workload.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_workload.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
