# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_num[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_base[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_net[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_hw[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
