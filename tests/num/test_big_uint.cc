/**
 * @file
 * BigUint unit and property tests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "num/big_uint.hh"
#include "stats/rng.hh"

namespace
{

using statsched::num::BigUint;
using statsched::stats::Rng;

TEST(BigUint, DefaultIsZero)
{
    BigUint z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.toString(), "0");
    EXPECT_EQ(z.toUint64(), 0u);
    EXPECT_EQ(z.bitLength(), 0u);
}

TEST(BigUint, ConstructFromUint64)
{
    EXPECT_EQ(BigUint(1u).toString(), "1");
    EXPECT_EQ(BigUint(4294967295ull).toString(), "4294967295");
    EXPECT_EQ(BigUint(4294967296ull).toString(), "4294967296");
    EXPECT_EQ(BigUint(18446744073709551615ull).toString(),
              "18446744073709551615");
}

TEST(BigUint, DecimalStringRoundTrip)
{
    const std::string digits =
        "123456789012345678901234567890123456789012345678901234567890";
    BigUint v(digits);
    EXPECT_EQ(v.toString(), digits);
    EXPECT_EQ(v.digitCount(), digits.size());
}

TEST(BigUint, LeadingZerosIgnored)
{
    EXPECT_EQ(BigUint(std::string("000042")).toString(), "42");
    EXPECT_EQ(BigUint(std::string("0")).toString(), "0");
}

TEST(BigUint, AdditionCarriesAcrossLimbs)
{
    BigUint a(0xffffffffull);
    BigUint b(1u);
    EXPECT_EQ((a + b).toString(), "4294967296");

    BigUint big("99999999999999999999999999999999");
    EXPECT_EQ((big + BigUint(1u)).toString(),
              "100000000000000000000000000000000");
}

TEST(BigUint, SubtractionBorrows)
{
    BigUint a("100000000000000000000000000000000");
    BigUint b(1u);
    EXPECT_EQ((a - b).toString(),
              "99999999999999999999999999999999");
    EXPECT_TRUE((a - a).isZero());
}

TEST(BigUint, MultiplicationMatchesKnownProducts)
{
    BigUint a("123456789123456789");
    BigUint b("987654321987654321");
    EXPECT_EQ((a * b).toString(),
              "121932631356500531347203169112635269");
    EXPECT_TRUE((a * BigUint()).isZero());
    EXPECT_EQ((a * BigUint(1u)).toString(), a.toString());
}

TEST(BigUint, DivisionAndRemainderKnownValues)
{
    BigUint a("1000000000000000000000000000000");
    BigUint b("999999999999");
    BigUint r;
    BigUint q = BigUint::divMod(a, b, r);
    // Verified independently: a = q*b + r.
    EXPECT_EQ((q * b + r).toString(), a.toString());
    EXPECT_TRUE(r < b);
}

TEST(BigUint, DivisionBySelfAndOne)
{
    BigUint a("314159265358979323846264338327950288");
    EXPECT_EQ((a / a).toString(), "1");
    EXPECT_EQ((a / BigUint(1u)).toString(), a.toString());
    EXPECT_TRUE((a % a).isZero());
}

TEST(BigUint, ComparisonOperators)
{
    BigUint small(41u);
    BigUint big("123456789123456789123456789");
    EXPECT_LT(small, big);
    EXPECT_GT(big, small);
    EXPECT_LE(small, BigUint(41u));
    EXPECT_GE(small, BigUint(41u));
    EXPECT_EQ(small, BigUint(41u));
    EXPECT_NE(small, big);
}

TEST(BigUint, PowMatchesRepeatedMultiplication)
{
    EXPECT_EQ(BigUint::pow(BigUint(2u), 0).toString(), "1");
    EXPECT_EQ(BigUint::pow(BigUint(2u), 64).toString(),
              "18446744073709551616");
    EXPECT_EQ(BigUint::pow(BigUint(10u), 30).toString(),
              "1" + std::string(30, '0'));
    // 3^40, computed independently.
    EXPECT_EQ(BigUint::pow(BigUint(3u), 40).toString(),
              "12157665459056928801");
}

TEST(BigUint, FactorialKnownValues)
{
    EXPECT_EQ(BigUint::factorial(0).toString(), "1");
    EXPECT_EQ(BigUint::factorial(5).toString(), "120");
    EXPECT_EQ(BigUint::factorial(20).toString(),
              "2432902008176640000");
    EXPECT_EQ(BigUint::factorial(25).toString(),
              "15511210043330985984000000");
    EXPECT_EQ(BigUint::factorial(100).digitCount(), 158u);
}

TEST(BigUint, BinomialKnownValues)
{
    EXPECT_EQ(BigUint::binomial(0, 0).toString(), "1");
    EXPECT_EQ(BigUint::binomial(5, 2).toString(), "10");
    EXPECT_EQ(BigUint::binomial(64, 32).toString(),
              "1832624140942590534");
    EXPECT_TRUE(BigUint::binomial(5, 6).isZero());
}

TEST(BigUint, BinomialPascalIdentity)
{
    for (unsigned n = 1; n <= 40; ++n) {
        for (unsigned k = 1; k <= n; ++k) {
            EXPECT_EQ(BigUint::binomial(n, k),
                      BigUint::binomial(n - 1, k - 1) +
                      BigUint::binomial(n - 1, k))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(BigUint, ScientificNotation)
{
    EXPECT_EQ(BigUint("1750").toScientific(2), "1.75e3");
    EXPECT_EQ(BigUint(9u).toScientific(2), "9.00e0");
    EXPECT_EQ(BigUint().toScientific(2), "0");
    EXPECT_EQ(BigUint("123456").toScientific(0), "1e5");
}

TEST(BigUint, ToDoubleApproximates)
{
    EXPECT_DOUBLE_EQ(BigUint(12345u).toDouble(), 12345.0);
    const double big = BigUint::pow(BigUint(10u), 50).toDouble();
    EXPECT_NEAR(big, 1e50, 1e35);
}

/** Randomized 64-bit arithmetic cross-check against native ints. */
TEST(BigUint, RandomizedSmallArithmeticOracle)
{
    Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.next() >> 33;
        const std::uint64_t b = (rng.next() >> 33) + 1;
        const BigUint ba(a);
        const BigUint bb(b);
        EXPECT_EQ((ba + bb).toUint64(), a + b);
        EXPECT_EQ((ba * bb).toUint64(), a * b);
        EXPECT_EQ((ba / bb).toUint64(), a / b);
        EXPECT_EQ((ba % bb).toUint64(), a % b);
        if (a >= b)
            EXPECT_EQ((ba - bb).toUint64(), a - b);
    }
}

/** (a*b)/b == a and (a*b)%b == 0 for large random operands. */
TEST(BigUint, MultiplyDivideInverseProperty)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        BigUint a(rng.next());
        BigUint b(rng.next() | 1);
        // Grow operands to multi-limb sizes.
        a = a * a + BigUint(rng.next());
        b = b * b + BigUint(1u);
        const BigUint product = a * b;
        EXPECT_EQ(product / b, a);
        EXPECT_TRUE((product % b).isZero());
    }
}

/** String round trip on randomly sized numbers. */
TEST(BigUint, StringRoundTripProperty)
{
    Rng rng(99);
    for (int i = 0; i < 100; ++i) {
        std::string digits;
        const int len = 1 + static_cast<int>(rng.uniformInt(70));
        digits.push_back(
            static_cast<char>('1' + rng.uniformInt(9)));
        for (int d = 1; d < len; ++d) {
            digits.push_back(
                static_cast<char>('0' + rng.uniformInt(10)));
        }
        EXPECT_EQ(BigUint(digits).toString(), digits);
    }
}

TEST(BigUint, BitLength)
{
    EXPECT_EQ(BigUint(1u).bitLength(), 1u);
    EXPECT_EQ(BigUint(255u).bitLength(), 8u);
    EXPECT_EQ(BigUint(256u).bitLength(), 9u);
    EXPECT_EQ(BigUint::pow(BigUint(2u), 100).bitLength(), 101u);
}

} // anonymous namespace
