/**
 * @file
 * Duration formatting tests, anchored to the Table 1 conversions.
 */

#include <gtest/gtest.h>

#include "num/big_uint.hh"
#include "num/duration.hh"

namespace
{

using statsched::num::BigUint;
using statsched::num::Duration;

TEST(Duration, ZeroAndMicroseconds)
{
    EXPECT_EQ(Duration().toString(), "0 us");
    EXPECT_EQ(Duration::fromMicroseconds(BigUint(999u)).toString(),
              "999 us");
}

TEST(Duration, SecondsMinutesHoursDays)
{
    EXPECT_EQ(Duration::fromSeconds(BigUint(42u)).toString(), "42.0 s");
    EXPECT_EQ(Duration::fromSeconds(BigUint(90u)).toString(),
              "1.5 min");
    EXPECT_EQ(Duration::fromSeconds(BigUint(7200u)).toString(),
              "2.0 hours");
    EXPECT_EQ(Duration::fromSeconds(BigUint(86400u * 7)).toString(),
              "7.0 days");
}

TEST(Duration, YearsUseJulianYear)
{
    // 31557600 s = 365.25 days.
    EXPECT_EQ(Duration::fromSeconds(BigUint(31557600u)).toString(),
              "1.0 year");
    EXPECT_EQ(Duration::fromSeconds(
                  BigUint(31557600ull * 15)).toString(),
              "15.0 years");
}

TEST(Duration, Table1ExecuteAllNineTasks)
{
    // 592,573 assignments x 1 s each is about 7 days, as the paper
    // reports for 9-task workloads.
    Duration d = Duration::fromSeconds(BigUint(592573u));
    EXPECT_EQ(d.toString(), "6.8 days");
}

TEST(Duration, Table1SixtyTasksIsAstronomical)
{
    // ~5.52e58 seconds = ~1.75e51 years (the paper's headline
    // number for executing all assignments of a 60-task workload).
    BigUint secs = BigUint(5516u) * BigUint::pow(BigUint(10u), 55);
    Duration d = Duration::fromSeconds(secs);
    const std::string s = d.toString();
    EXPECT_NE(s.find("e51 years"), std::string::npos) << s;
    EXPECT_EQ(s.substr(0, 3), "1.7") << s;
}

TEST(Duration, WholeUnitAccessors)
{
    Duration d = Duration::fromSeconds(BigUint(90u));
    EXPECT_EQ(d.seconds().toUint64(), 90u);
    EXPECT_TRUE(d.years().isZero());
}

} // anonymous namespace
