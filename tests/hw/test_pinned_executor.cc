/**
 * @file
 * Pinned-thread engine tests (kept small: they run real threads).
 */

#include <gtest/gtest.h>

#include <thread>

#include "hw/pinned_executor.hh"

namespace
{

using namespace statsched;
using namespace statsched::hw;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

TEST(PinnedExecutor, HostCpuMappingWraps)
{
    const unsigned n =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(PinnedThreadEngine::hostCpuOf(0), 0u);
    EXPECT_EQ(PinnedThreadEngine::hostCpuOf(n), 0u);
    EXPECT_LT(PinnedThreadEngine::hostCpuOf(63), n);
}

TEST(PinnedExecutor, MeasuresPositiveThroughput)
{
    PinnedOptions options;
    options.measureMillis = 60;
    PinnedThreadEngine engine(sim::Benchmark::IpfwdL1, 1, options);
    const Assignment a(t2, {0, 4, 1});
    const double pps = engine.measure(a);
    EXPECT_GT(pps, 0.0);
    EXPECT_NEAR(engine.secondsPerMeasurement(), 0.06, 1e-9);
}

TEST(PinnedExecutor, RunsEveryBenchmarkKernel)
{
    for (sim::Benchmark b : sim::caseStudySuite()) {
        PinnedOptions options;
        options.measureMillis = 40;
        PinnedThreadEngine engine(b, 1, options);
        const Assignment a(t2, {0, 4, 1});
        EXPECT_GT(engine.measure(a), 0.0) << sim::benchmarkName(b);
    }
}

TEST(PinnedExecutor, MultiInstanceAggregates)
{
    PinnedOptions options;
    options.measureMillis = 60;
    PinnedThreadEngine engine(sim::Benchmark::PacketAnalyzer, 2,
                              options);
    const Assignment a(t2, {0, 4, 1, 8, 12, 9});
    EXPECT_GT(engine.measure(a), 0.0);
    EXPECT_NE(engine.name().find("Packet analyzer"),
              std::string::npos);
}

} // anonymous namespace
