/**
 * @file
 * Pinned-thread engine tests (kept small: they run real threads).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

#include "hw/pinned_executor.hh"

namespace
{

using namespace statsched;
using namespace statsched::hw;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

TEST(PinnedExecutor, HostCpuMappingWraps)
{
    const unsigned n =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_EQ(PinnedThreadEngine::hostCpuOf(0), 0u);
    EXPECT_EQ(PinnedThreadEngine::hostCpuOf(n), 0u);
    EXPECT_LT(PinnedThreadEngine::hostCpuOf(63), n);
}

TEST(PinnedExecutor, MeasuresPositiveThroughput)
{
    PinnedOptions options;
    options.measureMillis = 60;
    PinnedThreadEngine engine(sim::Benchmark::IpfwdL1, 1, options);
    const Assignment a(t2, {0, 4, 1});
    const double pps = engine.measure(a);
    EXPECT_GT(pps, 0.0);
    EXPECT_NEAR(engine.secondsPerMeasurement(), 0.06, 1e-9);
}

TEST(PinnedExecutor, RunsEveryBenchmarkKernel)
{
    for (sim::Benchmark b : sim::caseStudySuite()) {
        PinnedOptions options;
        options.measureMillis = 40;
        PinnedThreadEngine engine(b, 1, options);
        const Assignment a(t2, {0, 4, 1});
        EXPECT_GT(engine.measure(a), 0.0) << sim::benchmarkName(b);
    }
}

TEST(PinnedExecutor, MultiInstanceAggregates)
{
    PinnedOptions options;
    options.measureMillis = 60;
    PinnedThreadEngine engine(sim::Benchmark::PacketAnalyzer, 2,
                              options);
    const Assignment a(t2, {0, 4, 1, 8, 12, 9});
    EXPECT_GT(engine.measure(a), 0.0);
    EXPECT_NE(engine.name().find("Packet analyzer"),
              std::string::npos);
}

TEST(PinnedExecutor, WatchdogReapsAWedgedStage)
{
    PinnedOptions options;
    options.measureMillis = 30;
    options.watchdogMillis = 150;
    options.testHangRelease =
        std::make_shared<std::atomic<bool>>(false);
    PinnedThreadEngine engine(sim::Benchmark::IpfwdL1, 1, options);
    const Assignment a(t2, {0, 4, 1});

    // The hung P stage must yield a TimedOut outcome within the
    // measurement window plus the watchdog grace period, not wedge
    // the caller.
    const auto start = std::chrono::steady_clock::now();
    const core::MeasurementOutcome outcome = engine.measureOutcome(a);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    EXPECT_EQ(outcome.status, core::MeasureStatus::TimedOut);
    EXPECT_TRUE(std::isnan(outcome.valueOrNaN()));
    EXPECT_EQ(engine.timeoutCount(), 1u);
    EXPECT_LT(elapsed, 2.0);

    // The abandoned thread exits once released, and later runs on
    // the same engine measure normally.
    options.testHangRelease->store(true,
                                   std::memory_order_release);
    const core::MeasurementOutcome next = engine.measureOutcome(a);
    ASSERT_TRUE(next.ok());
    EXPECT_GT(next.value, 0.0);
    EXPECT_EQ(engine.timeoutCount(), 1u);

    core::EngineStats stats;
    engine.collectStats(stats);
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_NEAR(stats.modeledSeconds, 0.150, 1e-9);
}

TEST(PinnedExecutor, WatchdogDisabledKeepsLegacyJoin)
{
    PinnedOptions options;
    options.measureMillis = 30;
    options.watchdogMillis = 0;
    PinnedThreadEngine engine(sim::Benchmark::IpfwdL1, 1, options);
    const Assignment a(t2, {0, 4, 1});
    const core::MeasurementOutcome outcome = engine.measureOutcome(a);
    ASSERT_TRUE(outcome.ok());
    EXPECT_GT(outcome.value, 0.0);
    EXPECT_EQ(engine.timeoutCount(), 0u);
}

} // anonymous namespace
