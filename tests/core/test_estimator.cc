/**
 * @file
 * Estimator and iterative-algorithm tests against a synthetic engine
 * with a known optimum.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hh"
#include "core/iterative.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::core;

const Topology t2 = Topology::ultraSparcT2();

/**
 * Synthetic engine with a known optimum `peak`: a smooth
 * pseudo-uniform component (flat density up to the endpoint, i.e. a
 * GPD tail with shape about -1) scaled down by pipe crowding, plus
 * small measurement noise. The population maximum is peak (uniform
 * component at its top, no crowding), which is reachable by a
 * non-negligible fraction of random assignments — the bounded,
 * estimable tail shape the paper's method assumes.
 */
class SyntheticEngine : public PerformanceEngine
{
  public:
    explicit SyntheticEngine(double peak, std::uint64_t seed)
        : peak_(peak), rng_(seed)
    {
    }

    double
    measure(const Assignment &assignment) override
    {
        const Topology &topo = assignment.topology();
        std::vector<int> pipe_load(topo.pipes(), 0);
        for (TaskId t = 0; t < assignment.size(); ++t)
            ++pipe_load[assignment.pipeOf(t)];
        double crowd = 0.0;
        for (int load : pipe_load) {
            if (load > 1)
                crowd += 0.03 * (load - 1);
        }

        // Deterministic pseudo-uniform in [0, 1) from the context
        // multiset (order independent).
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        for (TaskId t = 0; t < assignment.size(); ++t) {
            std::uint64_t x = assignment.contextOf(t) + 0x2545f491ull;
            x *= 0xbf58476d1ce4e5b9ull;
            x ^= x >> 29;
            h += x * x;
        }
        h *= 0x94d049bb133111ebull;
        h ^= h >> 32;
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53;

        const double value =
            peak_ * (1.0 - 0.2 * (1.0 - u)) * (1.0 - crowd);
        return value * (1.0 + 0.001 * rng_.normal());
    }

    std::string name() const override { return "synthetic"; }

    double secondsPerMeasurement() const override { return 1.5; }

  private:
    double peak_;
    statsched::stats::Rng rng_;
};

TEST(Estimator, InvariantsOnSyntheticEngine)
{
    SyntheticEngine engine(1e6, 3);
    OptimalPerformanceEstimator estimator(engine, t2, 12, 7);
    const auto result = estimator.extend(2000);

    EXPECT_EQ(result.sample.size(), 2000u);
    ASSERT_TRUE(result.bestAssignment.has_value());
    EXPECT_DOUBLE_EQ(result.bestObserved,
                     *std::max_element(result.sample.begin(),
                                       result.sample.end()));
    ASSERT_TRUE(result.pot.valid);
    EXPECT_LE(result.bestObserved, result.pot.upb * 1.001);
    // Known optimum ~1e6: the estimate must be in the right band.
    EXPECT_NEAR(result.pot.upb, 1e6, 0.05e6);
    EXPECT_GE(result.estimatedLoss(), 0.0);
    EXPECT_NEAR(result.modeledSeconds, 2000 * 1.5, 1e-9);
}

TEST(Estimator, ExtendGrowsSample)
{
    SyntheticEngine engine(1e6, 4);
    OptimalPerformanceEstimator estimator(engine, t2, 12, 8);
    estimator.extend(500);
    EXPECT_EQ(estimator.sampleSize(), 500u);
    const auto result = estimator.extend(250);
    EXPECT_EQ(estimator.sampleSize(), 750u);
    EXPECT_EQ(result.sample.size(), 750u);
}

TEST(Estimator, ColdIncrementalMatchesClassicPipeline)
{
    // The estimator now runs on the incremental PotAccumulator; with
    // warm starts off its POT result must be bit-for-bit what the
    // from-scratch pipeline computes on the same cumulative sample.
    SyntheticEngine engine(1e6, 14);
    OptimalPerformanceEstimator estimator(engine, t2, 12, 21, {},
                                          false);
    for (int round = 0; round < 4; ++round) {
        const auto result = estimator.extend(round == 0 ? 1000 : 200);
        const auto scratch =
            statsched::stats::estimateOptimalPerformance(result.sample);
        EXPECT_EQ(result.pot.valid, scratch.valid);
        EXPECT_DOUBLE_EQ(result.pot.threshold, scratch.threshold);
        EXPECT_DOUBLE_EQ(result.pot.upb, scratch.upb);
        EXPECT_DOUBLE_EQ(result.pot.upbLower, scratch.upbLower);
        EXPECT_DOUBLE_EQ(result.pot.upbUpper, scratch.upbUpper);
        EXPECT_DOUBLE_EQ(result.pot.fit.xi, scratch.fit.xi);
        EXPECT_DOUBLE_EQ(result.pot.fit.sigma, scratch.fit.sigma);
    }
}

TEST(Estimator, BestObservedNeverDecreases)
{
    SyntheticEngine engine(1e6, 5);
    OptimalPerformanceEstimator estimator(engine, t2, 12, 9);
    double best = 0.0;
    for (int round = 0; round < 5; ++round) {
        const auto result = estimator.extend(200);
        EXPECT_GE(result.bestObserved, best);
        best = result.bestObserved;
    }
}

TEST(Iterative, ConvergesToLooseTarget)
{
    SyntheticEngine engine(1e6, 6);
    IterativeOptions options;
    options.initialSample = 200;
    options.incrementSample = 100;
    options.acceptableLoss = 0.10;
    options.maxSample = 5000;
    const auto result =
        iterativeAssignmentSearch(engine, t2, 12, 10, options);
    EXPECT_TRUE(result.satisfied);
    EXPECT_LE(result.totalSampled, 5000u);
    ASSERT_FALSE(result.steps.empty());
    EXPECT_LE(result.steps.back().loss, 0.10);
}

TEST(Iterative, StepsGrowByIncrement)
{
    SyntheticEngine engine(1e6, 7);
    IterativeOptions options;
    options.initialSample = 150;
    options.incrementSample = 50;
    options.acceptableLoss = 0.001;   // hard target forces loops
    options.maxSample = 600;
    const auto result =
        iterativeAssignmentSearch(engine, t2, 12, 11, options);
    ASSERT_GE(result.steps.size(), 2u);
    EXPECT_EQ(result.steps[0].sampleSize, 150u);
    for (std::size_t i = 1; i < result.steps.size(); ++i) {
        EXPECT_EQ(result.steps[i].sampleSize,
                  result.steps[i - 1].sampleSize + 50u);
    }
}

TEST(Iterative, RespectsSampleCap)
{
    SyntheticEngine engine(1e6, 8);
    IterativeOptions options;
    options.initialSample = 100;
    options.incrementSample = 100;
    options.acceptableLoss = 1e-9;    // unreachable
    options.maxSample = 700;
    const auto result =
        iterativeAssignmentSearch(engine, t2, 12, 12, options);
    EXPECT_FALSE(result.satisfied);
    EXPECT_GE(result.totalSampled, 700u);
    EXPECT_LE(result.totalSampled, 800u);
}

TEST(Iterative, TighterTargetNeedsMoreSamples)
{
    IterativeOptions loose;
    loose.initialSample = 200;
    loose.incrementSample = 100;
    loose.acceptableLoss = 0.20;
    loose.maxSample = 20000;

    IterativeOptions tight = loose;
    tight.acceptableLoss = 0.02;

    SyntheticEngine engine_a(1e6, 9);
    SyntheticEngine engine_b(1e6, 9);
    const auto r_loose =
        iterativeAssignmentSearch(engine_a, t2, 12, 13, loose);
    const auto r_tight =
        iterativeAssignmentSearch(engine_b, t2, 12, 13, tight);
    EXPECT_LE(r_loose.totalSampled, r_tight.totalSampled);
}

} // anonymous namespace
