/**
 * @file
 * Baseline scheduler tests.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/baselines.hh"

namespace
{

using namespace statsched::core;

const Topology t2 = Topology::ultraSparcT2();

/** Trivial engine: performance = number of distinct cores used. */
class CoreSpreadEngine : public PerformanceEngine
{
  public:
    double
    measure(const Assignment &assignment) override
    {
        std::vector<bool> used(assignment.topology().cores, false);
        for (TaskId t = 0; t < assignment.size(); ++t)
            used[assignment.coreOf(t)] = true;
        return static_cast<double>(
            std::count(used.begin(), used.end(), true));
    }

    std::string name() const override { return "core-spread"; }
};

TEST(Baselines, LinuxLikeBalancesCores)
{
    for (std::uint32_t tasks : {3u, 6u, 8u, 15u, 24u, 64u}) {
        const Assignment a = linuxLikeAssignment(t2, tasks);
        std::vector<int> per_core(t2.cores, 0);
        for (TaskId t = 0; t < tasks; ++t)
            ++per_core[a.coreOf(t)];
        const auto [lo, hi] =
            std::minmax_element(per_core.begin(), per_core.end());
        EXPECT_LE(*hi - *lo, 1) << "tasks=" << tasks;
    }
}

TEST(Baselines, LinuxLikeBalancesPipesWithinCores)
{
    const Assignment a = linuxLikeAssignment(t2, 24);
    std::vector<int> per_pipe(t2.pipes(), 0);
    for (TaskId t = 0; t < 24; ++t)
        ++per_pipe[a.pipeOf(t)];
    // 24 tasks over 16 pipes, balanced: loads of 1 or 2.
    for (int load : per_pipe) {
        EXPECT_GE(load, 1);
        EXPECT_LE(load, 2);
    }
}

TEST(Baselines, LinuxLikeSixTasksOneCoreEach)
{
    // Six tasks on eight cores: each on its own core (like the CFS
    // domain balancer would do).
    const Assignment a = linuxLikeAssignment(t2, 6);
    std::vector<int> per_core(t2.cores, 0);
    for (TaskId t = 0; t < 6; ++t)
        ++per_core[a.coreOf(t)];
    EXPECT_EQ(*std::max_element(per_core.begin(), per_core.end()), 1);
}

TEST(Baselines, LinuxLikeFillsWholeMachine)
{
    const Assignment a = linuxLikeAssignment(t2, 64);
    EXPECT_TRUE(Assignment::isValid(t2, a.contexts()));
}

TEST(Baselines, PackedFillsContextsInOrder)
{
    const Assignment a = packedAssignment(t2, 9);
    for (TaskId t = 0; t < 9; ++t)
        EXPECT_EQ(a.contextOf(t), t);
    // First 8 tasks land on core 0, the 9th on core 1.
    EXPECT_EQ(a.coreOf(7), 0u);
    EXPECT_EQ(a.coreOf(8), 1u);
}

TEST(Baselines, NaiveExpectedPerformanceIsMeanOverDraws)
{
    CoreSpreadEngine engine;
    // With 6 tasks, Linux-like spreads to 6 cores; the naive random
    // average must be strictly below that (collisions happen).
    const double naive =
        naiveExpectedPerformance(engine, t2, 6, 500, 17);
    const double linux_like =
        engine.measure(linuxLikeAssignment(t2, 6));
    EXPECT_LT(naive, linux_like);
    EXPECT_GT(naive, 4.0);
    EXPECT_EQ(linux_like, 6.0);
}

TEST(Baselines, DeterministicBySeed)
{
    CoreSpreadEngine engine;
    const double a = naiveExpectedPerformance(engine, t2, 6, 100, 5);
    const double b = naiveExpectedPerformance(engine, t2, 6, 100, 5);
    EXPECT_DOUBLE_EQ(a, b);
}

} // anonymous namespace
