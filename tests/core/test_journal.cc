/**
 * @file
 * Measurement-journal tests: CRC framing, header identity, batch
 * roundtrip, and — the crash-safety core — recovery of the longest
 * trustworthy prefix from torn, corrupt and incomplete tails.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.hh"
#include "core/sampler.hh"
#include "core/topology.hh"

namespace
{

using namespace statsched;
using core::CheckpointKind;
using core::JournalBatch;
using core::JournalCheckpoint;
using core::JournalHeader;
using core::JournalRecovery;
using core::MeasurementJournal;
using core::MeasurementOutcome;
using core::MeasureStatus;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

/** RAII temp file path; removes the file on scope exit. */
class TempPath
{
  public:
    explicit TempPath(const char *stem)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("statsched_journal_test_") + stem))
                    .string())
    {
        std::filesystem::remove(path_);
    }

    ~TempPath() { std::filesystem::remove(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

JournalHeader
testHeader(std::uint64_t seed = 7, std::uint64_t configHash = 0xabc)
{
    return JournalHeader::forCampaign(t2, 24, seed, configHash);
}

MeasurementOutcome
okOutcome(double value, std::uint32_t attempts = 1)
{
    MeasurementOutcome o;
    o.value = value;
    o.status = MeasureStatus::Ok;
    o.attempts = attempts;
    return o;
}

/** Writes a journal with two complete groups and a checkpoint. */
void
writeTwoGroups(const std::string &path)
{
    MeasurementJournal journal(path, testHeader());
    journal.beginBatch(0, 2);
    journal.appendMeasurement(11, okOutcome(1.5));
    journal.appendMeasurement(22, okOutcome(2.5, 3));
    journal.sync();
    JournalCheckpoint mid;
    mid.kind = CheckpointKind::Progress;
    mid.round = 1;
    mid.attempted = 2;
    mid.sampled = 2;
    mid.best = 2.5;
    journal.appendCheckpoint(mid);
    journal.beginBatch(1, 1);
    MeasurementOutcome failed;
    failed.value = 0.0;
    failed.status = MeasureStatus::TimedOut;
    failed.attempts = 2;
    journal.appendMeasurement(33, failed);
    journal.sync();
}

std::uint64_t
fileSize(const std::string &path)
{
    return static_cast<std::uint64_t>(
        std::filesystem::file_size(path));
}

void
truncateTo(const std::string &path, std::uint64_t size)
{
    std::filesystem::resize_file(path, size);
}

void
flipByteAt(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

TEST(JournalCrc, MatchesIeee8023ReferenceVector)
{
    // The canonical CRC-32 check value: crc32("123456789").
    const char digits[] = "123456789";
    EXPECT_EQ(core::journalCrc32(digits, 9), 0xCBF43926u);
    // Chaining two halves equals one pass.
    const std::uint32_t first = core::journalCrc32(digits, 4);
    EXPECT_EQ(core::journalCrc32(digits + 4, 5, first), 0xCBF43926u);
}

TEST(Journal, HeaderRoundtrip)
{
    TempPath path("header");
    { MeasurementJournal journal(path.str(), testHeader(9, 0xfeed)); }

    const JournalRecovery recovery = core::recoverJournal(path.str());
    EXPECT_TRUE(recovery.fileExists);
    ASSERT_TRUE(recovery.headerValid) << recovery.error;
    EXPECT_TRUE(recovery.header == testHeader(9, 0xfeed));
    EXPECT_FALSE(recovery.header == testHeader(9, 0xbeef));
    EXPECT_FALSE(recovery.header == testHeader(8, 0xfeed));
    EXPECT_TRUE(recovery.batches.empty());
    EXPECT_EQ(recovery.validBytes, fileSize(path.str()));
    EXPECT_EQ(recovery.truncatedBytes, 0u);
}

TEST(Journal, BatchAndCheckpointRoundtrip)
{
    TempPath path("roundtrip");
    writeTwoGroups(path.str());

    const JournalRecovery recovery = core::recoverJournal(path.str());
    ASSERT_TRUE(recovery.headerValid) << recovery.error;
    ASSERT_EQ(recovery.batches.size(), 2u);
    EXPECT_EQ(recovery.measurementCount(), 3u);

    const JournalBatch &first = recovery.batches[0];
    EXPECT_EQ(first.round, 0u);
    ASSERT_EQ(first.measurements.size(), 2u);
    EXPECT_EQ(first.measurements[0].keyHash, 11u);
    EXPECT_EQ(first.measurements[0].outcome.value, 1.5);
    EXPECT_TRUE(first.measurements[0].outcome.ok());
    EXPECT_EQ(first.measurements[1].keyHash, 22u);
    EXPECT_EQ(first.measurements[1].outcome.attempts, 3u);

    const JournalBatch &second = recovery.batches[1];
    EXPECT_EQ(second.round, 1u);
    ASSERT_EQ(second.measurements.size(), 1u);
    EXPECT_EQ(second.measurements[0].keyHash, 33u);
    EXPECT_EQ(second.measurements[0].outcome.status,
              MeasureStatus::TimedOut);
    EXPECT_EQ(second.measurements[0].outcome.attempts, 2u);

    ASSERT_EQ(recovery.checkpoints.size(), 1u);
    EXPECT_EQ(recovery.checkpoints[0].kind, CheckpointKind::Progress);
    EXPECT_EQ(recovery.checkpoints[0].round, 1u);
    EXPECT_EQ(recovery.checkpoints[0].attempted, 2u);
    EXPECT_EQ(recovery.checkpoints[0].best, 2.5);
    EXPECT_EQ(recovery.validBytes, fileSize(path.str()));
}

TEST(Journal, TornTailTruncatedAtEveryByte)
{
    TempPath full("torn_full");
    writeTwoGroups(full.str());
    const JournalRecovery intact = core::recoverJournal(full.str());
    ASSERT_TRUE(intact.headerValid);
    const std::uint64_t size = fileSize(full.str());

    // Where recovery may legitimately commit: after the header, after
    // each complete group, and after the checkpoint between them.
    // Truncating anywhere must recover exactly the longest committed
    // prefix at or below the cut — never a partial record, never
    // bytes past the cut.
    for (std::uint64_t cut = 44; cut < size; ++cut) {
        TempPath torn("torn_cut");
        std::filesystem::copy_file(
            full.str(), torn.str(),
            std::filesystem::copy_options::overwrite_existing);
        truncateTo(torn.str(), cut);

        const JournalRecovery r = core::recoverJournal(torn.str());
        ASSERT_TRUE(r.headerValid)
            << "cut at " << cut << ": " << r.error;
        EXPECT_LE(r.validBytes, cut) << "cut at " << cut;
        EXPECT_EQ(r.validBytes + r.truncatedBytes, cut)
            << "cut at " << cut;
        // A group is either fully recovered or fully dropped.
        for (const JournalBatch &b : r.batches) {
            const std::size_t expected =
                b.round == 0 ? 2u : 1u;
            EXPECT_EQ(b.measurements.size(), expected)
                << "cut at " << cut;
        }
        EXPECT_LE(r.batches.size(), 2u) << "cut at " << cut;
    }
}

TEST(Journal, CorruptTailByteDropsItsGroup)
{
    TempPath path("corrupt");
    writeTwoGroups(path.str());
    const std::uint64_t size = fileSize(path.str());

    // Flip a byte inside the last record (its CRC): recovery must
    // drop the whole second group but keep the first intact.
    flipByteAt(path.str(), size - 1);
    const JournalRecovery r = core::recoverJournal(path.str());
    ASSERT_TRUE(r.headerValid) << r.error;
    ASSERT_EQ(r.batches.size(), 1u);
    EXPECT_EQ(r.batches[0].measurements.size(), 2u);
    EXPECT_GT(r.truncatedBytes, 0u);
    EXPECT_EQ(r.validBytes + r.truncatedBytes, size);
}

TEST(Journal, IncompleteGroupIsDropped)
{
    TempPath path("incomplete");
    {
        MeasurementJournal journal(path.str(), testHeader());
        journal.beginBatch(0, 1);
        journal.appendMeasurement(1, okOutcome(1.0));
        journal.sync();
        // A group that promises 3 measurements but the process dies
        // after 1: every record is intact, the group is not.
        journal.beginBatch(1, 3);
        journal.appendMeasurement(2, okOutcome(2.0));
        journal.sync();
    }

    const JournalRecovery r = core::recoverJournal(path.str());
    ASSERT_TRUE(r.headerValid) << r.error;
    ASSERT_EQ(r.batches.size(), 1u);
    EXPECT_EQ(r.batches[0].round, 0u);
    EXPECT_GT(r.truncatedBytes, 0u);
}

TEST(Journal, UnusableFilesReportErrors)
{
    TempPath missing("missing");
    const JournalRecovery none = core::recoverJournal(missing.str());
    EXPECT_FALSE(none.fileExists);
    EXPECT_FALSE(none.headerValid);
    EXPECT_FALSE(none.error.empty());

    TempPath empty("empty");
    { std::ofstream touch(empty.str(), std::ios::binary); }
    const JournalRecovery hollow = core::recoverJournal(empty.str());
    EXPECT_TRUE(hollow.fileExists);
    EXPECT_FALSE(hollow.headerValid);
    EXPECT_FALSE(hollow.error.empty());

    TempPath magic("magic");
    writeTwoGroups(magic.str());
    flipByteAt(magic.str(), 0);
    const JournalRecovery bad = core::recoverJournal(magic.str());
    EXPECT_FALSE(bad.headerValid);
    EXPECT_FALSE(bad.error.empty());
}

TEST(Journal, AppendAfterRecoveryTruncatesTheTornTail)
{
    TempPath path("reopen");
    writeTwoGroups(path.str());
    // Tear the last record, recover, reopen for append.
    truncateTo(path.str(), fileSize(path.str()) - 2);
    const JournalRecovery first = core::recoverJournal(path.str());
    ASSERT_TRUE(first.headerValid);
    ASSERT_EQ(first.batches.size(), 1u);

    {
        MeasurementJournal journal(path.str(), first.validBytes);
        journal.beginBatch(5, 1);
        journal.appendMeasurement(99, okOutcome(9.0));
        journal.sync();
    }

    const JournalRecovery second = core::recoverJournal(path.str());
    ASSERT_TRUE(second.headerValid) << second.error;
    ASSERT_EQ(second.batches.size(), 2u);
    EXPECT_EQ(second.batches[0].measurements.size(), 2u);
    EXPECT_EQ(second.batches[1].round, 5u);
    EXPECT_EQ(second.batches[1].measurements[0].keyHash, 99u);
    EXPECT_EQ(second.truncatedBytes, 0u);
}

TEST(Journal, KeyHashIsStableAndDiscriminating)
{
    core::RandomAssignmentSampler sampler(t2, 24, 123);
    const std::vector<core::Assignment> batch = sampler.drawSample(8);
    for (const core::Assignment &a : batch)
        EXPECT_EQ(core::journalKeyHash(a), core::journalKeyHash(a));
    // Distinct random assignments should hash apart (no collision in
    // a tiny draw; a collision here would break replay verification).
    for (std::size_t i = 0; i < batch.size(); ++i)
        for (std::size_t j = i + 1; j < batch.size(); ++j) {
            if (batch[i].canonicalKey() == batch[j].canonicalKey())
                continue;
            EXPECT_NE(core::journalKeyHash(batch[i]),
                      core::journalKeyHash(batch[j]));
        }
}

} // namespace
