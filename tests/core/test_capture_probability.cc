/**
 * @file
 * Capture-probability tests (Section 3.1 / Figure 2 of the paper).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/capture_probability.hh"

namespace
{

using namespace statsched::core;

TEST(CaptureProbability, ClosedFormMatchesDirectPow)
{
    for (double p : {1.0, 2.0, 5.0, 10.0, 25.0}) {
        for (std::uint64_t n : {1ull, 10ull, 100ull, 1000ull}) {
            const double direct =
                1.0 - std::pow((100.0 - p) / 100.0,
                               static_cast<double>(n));
            EXPECT_NEAR(captureProbability(p, n), direct, 1e-12)
                << "p=" << p << " n=" << n;
        }
    }
}

TEST(CaptureProbability, PaperHeadlineNumbers)
{
    // "a sample of several hundred random observations is sufficient
    // to capture at least one of 1% or 2% of the best-performing
    // task assignments with a very high probability."
    EXPECT_GT(captureProbability(1.0, 500), 0.99);
    EXPECT_GT(captureProbability(2.0, 300), 0.99);
    // Small samples (< 10) are unlikely to capture the top 1-5%.
    EXPECT_LT(captureProbability(1.0, 10), 0.1);
    EXPECT_LT(captureProbability(5.0, 10), 0.41);
}

TEST(CaptureProbability, EdgeSampleSizes)
{
    EXPECT_DOUBLE_EQ(captureProbability(5.0, 0), 0.0);
    EXPECT_NEAR(captureProbability(5.0, 1), 0.05, 1e-12);
}

TEST(CaptureProbability, MonotoneInBothArguments)
{
    double prev = 0.0;
    for (std::uint64_t n = 1; n < 2000; n *= 2) {
        const double p = captureProbability(1.0, n);
        EXPECT_GT(p, prev);
        prev = p;
    }
    EXPECT_LT(captureProbability(1.0, 100),
              captureProbability(2.0, 100));
}

TEST(CaptureProbability, AsymptoticallyApproachesOne)
{
    EXPECT_GT(captureProbability(1.0, 3000), 0.999999);
    EXPECT_LT(captureProbability(1.0, 3000), 1.0 + 1e-12);
}

TEST(RequiredSampleSize, InvertsTheProbability)
{
    for (double p : {0.5, 1.0, 2.0, 5.0}) {
        for (double target : {0.9, 0.99, 0.999}) {
            const std::uint64_t n = requiredSampleSize(p, target);
            EXPECT_GE(captureProbability(p, n), target);
            if (n > 1) {
                EXPECT_LT(captureProbability(p, n - 1), target)
                    << "p=" << p << " target=" << target;
            }
        }
    }
}

TEST(RequiredSampleSize, KnownValues)
{
    // n = ln(0.01)/ln(0.99) = 458.2 -> 459.
    EXPECT_EQ(requiredSampleSize(1.0, 0.99), 459u);
    // For the top 2%: n = ln(0.01)/ln(0.98) = 227.9 -> 228.
    EXPECT_EQ(requiredSampleSize(2.0, 0.99), 228u);
}

TEST(CaptureCurve, LogSpacedAndMonotone)
{
    const auto curve = captureCurve(1.0, 10000, 40);
    ASSERT_GE(curve.size(), 10u);
    EXPECT_EQ(curve.front().first, 1u);
    EXPECT_EQ(curve.back().first, 10000u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].first, curve[i - 1].first);
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    }
}

} // anonymous namespace
