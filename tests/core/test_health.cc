/**
 * @file
 * Health aggregate tests: listener fires on level changes only,
 * worst() is the maximum across components, and snapshots keep
 * first-transition order (the deterministic order the CLI prints).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/health.hh"

namespace
{

using statsched::core::Health;
using statsched::core::HealthLevel;
using statsched::core::HealthTransition;
using statsched::core::healthLevelName;

TEST(Health, LevelNamesAreStable)
{
    EXPECT_STREQ(healthLevelName(HealthLevel::Ok), "ok");
    EXPECT_STREQ(healthLevelName(HealthLevel::Degraded), "degraded");
    EXPECT_STREQ(healthLevelName(HealthLevel::Failing), "failing");
}

TEST(Health, UnknownComponentsReadOkAndWorstStartsOk)
{
    Health health;
    EXPECT_EQ(health.level("journal"), HealthLevel::Ok);
    EXPECT_EQ(health.worst(), HealthLevel::Ok);
    EXPECT_TRUE(health.components().empty());
}

TEST(Health, ListenerFiresOnLevelChangesOnly)
{
    std::vector<HealthTransition> seen;
    Health health([&seen](const HealthTransition &t) {
        seen.push_back(t);
    });

    // An initial Ok report registers the component silently.
    health.transition("journal", HealthLevel::Ok, "opened");
    EXPECT_TRUE(seen.empty());
    ASSERT_EQ(health.components().size(), 1u);

    health.transition("journal", HealthLevel::Degraded, "disk full");
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].component, "journal");
    EXPECT_EQ(seen[0].from, HealthLevel::Ok);
    EXPECT_EQ(seen[0].to, HealthLevel::Degraded);
    EXPECT_EQ(seen[0].detail, "disk full");

    // Repeating the same level is not a transition.
    health.transition("journal", HealthLevel::Degraded, "still full");
    EXPECT_EQ(seen.size(), 1u);

    // Worsening and recovering both fire.
    health.transition("journal", HealthLevel::Failing, "media died");
    health.transition("journal", HealthLevel::Ok, "rotated away");
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[1].to, HealthLevel::Failing);
    EXPECT_EQ(seen[2].from, HealthLevel::Failing);
    EXPECT_EQ(seen[2].to, HealthLevel::Ok);
}

TEST(Health, WorstIsTheMaximumAcrossComponents)
{
    Health health;
    health.transition("journal", HealthLevel::Degraded, "d");
    EXPECT_EQ(health.worst(), HealthLevel::Degraded);

    health.transition("shards", HealthLevel::Failing, "f");
    EXPECT_EQ(health.worst(), HealthLevel::Failing);

    // One component recovering does not mask another's state.
    health.transition("shards", HealthLevel::Ok, "respawned");
    EXPECT_EQ(health.worst(), HealthLevel::Degraded);
    EXPECT_EQ(health.level("journal"), HealthLevel::Degraded);
    EXPECT_EQ(health.level("shards"), HealthLevel::Ok);
}

TEST(Health, SnapshotKeepsFirstTransitionOrderAndLastDetail)
{
    Health health;
    health.transition("shards", HealthLevel::Degraded, "slot lost");
    health.transition("journal", HealthLevel::Degraded, "disk full");
    health.transition("estimator", HealthLevel::Ok, "fine");
    health.transition("shards", HealthLevel::Failing,
                      "all quarantined");

    const std::vector<Health::Component> all = health.components();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "shards");
    EXPECT_EQ(all[0].level, HealthLevel::Failing);
    EXPECT_EQ(all[0].detail, "all quarantined");
    EXPECT_EQ(all[1].name, "journal");
    EXPECT_EQ(all[1].level, HealthLevel::Degraded);
    EXPECT_EQ(all[2].name, "estimator");
    EXPECT_EQ(all[2].level, HealthLevel::Ok);
}

TEST(Health, ListenerMayCallBackIntoHealth)
{
    // The listener is documented to run outside the lock; a listener
    // that reads (or escalates) must not deadlock.
    Health *self = nullptr;
    std::vector<std::string> notes;
    Health health([&](const HealthTransition &t) {
        notes.push_back(t.component + ":" +
                        healthLevelName(t.to) + ":" +
                        healthLevelName(self->worst()));
    });
    self = &health;

    health.transition("journal", HealthLevel::Degraded, "d");
    ASSERT_EQ(notes.size(), 1u);
    EXPECT_EQ(notes[0], "journal:degraded:degraded");
}

} // namespace
