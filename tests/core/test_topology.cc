/**
 * @file
 * Topology tests.
 */

#include <gtest/gtest.h>

#include "core/topology.hh"

namespace
{

using statsched::core::Topology;

TEST(Topology, UltraSparcT2Shape)
{
    const Topology t2 = Topology::ultraSparcT2();
    EXPECT_EQ(t2.cores, 8u);
    EXPECT_EQ(t2.pipesPerCore, 2u);
    EXPECT_EQ(t2.strandsPerPipe, 4u);
    EXPECT_EQ(t2.contexts(), 64u);
    EXPECT_EQ(t2.pipes(), 16u);
    EXPECT_EQ(t2.shapeString(), "8x2x4");
}

TEST(Topology, ContextDecomposition)
{
    const Topology t2 = Topology::ultraSparcT2();
    // Context 0: core 0, pipe 0, strand 0.
    EXPECT_EQ(t2.coreOf(0), 0u);
    EXPECT_EQ(t2.pipeOf(0), 0u);
    EXPECT_EQ(t2.strandOf(0), 0u);
    // Context 7: core 0, pipe 1 (second pipe), strand 3.
    EXPECT_EQ(t2.coreOf(7), 0u);
    EXPECT_EQ(t2.pipeOf(7), 1u);
    EXPECT_EQ(t2.pipeInCore(7), 1u);
    EXPECT_EQ(t2.strandOf(7), 3u);
    // Context 63: core 7, pipe 15, strand 3.
    EXPECT_EQ(t2.coreOf(63), 7u);
    EXPECT_EQ(t2.pipeOf(63), 15u);
    EXPECT_EQ(t2.strandOf(63), 3u);
}

TEST(Topology, FirstContextOfPipe)
{
    const Topology t2 = Topology::ultraSparcT2();
    EXPECT_EQ(t2.firstContextOfPipe(0), 0u);
    EXPECT_EQ(t2.firstContextOfPipe(1), 4u);
    EXPECT_EQ(t2.firstContextOfPipe(15), 60u);
}

/** Shape sweep: decomposition is a bijection over all contexts. */
class TopologyShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(TopologyShapes, DecompositionIsConsistent)
{
    const auto [cores, pipes, strands] = GetParam();
    const Topology topo{static_cast<std::uint32_t>(cores),
                        static_cast<std::uint32_t>(pipes),
                        static_cast<std::uint32_t>(strands)};
    for (std::uint32_t ctx = 0; ctx < topo.contexts(); ++ctx) {
        const std::uint32_t core = topo.coreOf(ctx);
        const std::uint32_t pipe = topo.pipeOf(ctx);
        const std::uint32_t strand = topo.strandOf(ctx);
        EXPECT_LT(core, topo.cores);
        EXPECT_LT(pipe, topo.pipes());
        EXPECT_LT(strand, topo.strandsPerPipe);
        EXPECT_EQ(pipe / topo.pipesPerCore, core);
        EXPECT_EQ(pipe * topo.strandsPerPipe + strand, ctx);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(2, 2, 2),
                      std::make_tuple(8, 2, 4),
                      std::make_tuple(4, 1, 8),
                      std::make_tuple(16, 4, 2)));

TEST(Topology, Equality)
{
    EXPECT_TRUE(Topology::ultraSparcT2() == Topology::ultraSparcT2());
    EXPECT_FALSE(Topology::ultraSparcT2() == (Topology{4, 2, 4}));
}

} // anonymous namespace
