/**
 * @file
 * Contract-containment tests for the engine decorator stack.
 *
 * The base/check.hh contracts throw ContractViolation at the default
 * check level; these tests pin down how the sanctioned decorator
 * chain (Metered(Memoizing(Resilient(Parallel(inner))))) turns those
 * violations into structured MeasureStatus::Errored outcomes instead
 * of aborting — and the regression the audit found: a quarantined
 * (or otherwise failed) outcome surfacing as NaN through the double
 * channel must never be memoized, or the class stays poisoned
 * forever.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/check.hh"
#include "core/memoizing_engine.hh"
#include "core/parallel_engine.hh"
#include "core/resilient_engine.hh"
#include "core/sampler.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::MeasurementOutcome;
using core::MeasureStatus;
using core::MemoizingEngine;
using core::ParallelEngine;
using core::ResilientEngine;
using core::ResilientOptions;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed = 47)
{
    core::RandomAssignmentSampler sampler(t2, 24, seed);
    return sampler.drawSample(n);
}

/**
 * Violates a SCHED_REQUIRE-style contract on the first
 * `violations` measurements of each class, then yields 100.
 * Publishes a parallel kernel so the violation can be raised on a
 * worker-pool thread.
 */
class ContractViolatingEngine : public core::PerformanceEngine
{
  public:
    explicit ContractViolatingEngine(std::uint32_t violations,
                                     bool recover = true)
        : violations_(violations), recover_(recover)
    {
    }

    double
    measure(const Assignment &assignment) override
    {
        (void)assignment;
        const std::uint64_t n =
            calls_.fetch_add(1, std::memory_order_relaxed);
        const bool violate =
            !recover_ || n < violations_;
        SCHED_REQUIRE(!violate, "deliberate contract violation");
        return 100.0;
    }

    core::BatchKernel
    parallelKernel(std::size_t batchSize) override
    {
        (void)batchSize;
        return [this](const Assignment &a, std::size_t) {
            return measure(a);
        };
    }

    std::string name() const override { return "violating"; }

    std::uint64_t calls() const { return calls_.load(); }

  private:
    std::uint32_t violations_;
    bool recover_;
    std::atomic<std::uint64_t> calls_{0};
};

TEST(ContractContainment, ParallelWorkerViolationBecomesErrored)
{
    // A contract violation raised on a worker-pool thread must not
    // std::terminate the process; it degrades to a structured
    // Errored outcome per item.
    ContractViolatingEngine inner(1u << 30, /*recover=*/false);
    ParallelEngine parallel(inner, 4);

    const auto batch = drawBatch(32);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    parallel.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes)
        EXPECT_EQ(MeasureStatus::Errored, outcome.status);
}

TEST(ContractContainment, ParallelDoubleChannelDegradesToNaN)
{
    ContractViolatingEngine inner(1u << 30, /*recover=*/false);
    ParallelEngine parallel(inner, 4);

    const auto batch = drawBatch(16);
    std::vector<double> values(batch.size());
    parallel.measureBatch(batch, values);
    for (const double v : values)
        EXPECT_TRUE(std::isnan(v));
}

TEST(ContractContainment, ResilientRetriesThroughViolations)
{
    // The violation clears after the first attempt; the resilient
    // layer's retry ladder must recover the reading.
    ContractViolatingEngine inner(1);
    ResilientOptions options;
    options.maxAttempts = 3;
    ResilientEngine resilient(inner, options);

    const auto batch = drawBatch(1);
    const MeasurementOutcome outcome =
        resilient.measureOutcome(batch[0]);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(100.0, outcome.value);
    EXPECT_GE(inner.calls(), 2u);
}

TEST(ContractContainment, ResilientQuarantinesPersistentViolators)
{
    ContractViolatingEngine inner(1u << 30, /*recover=*/false);
    ResilientOptions options;
    options.maxAttempts = 2;
    options.quarantineAfter = 1;
    ResilientEngine resilient(inner, options);

    const auto batch = drawBatch(1);
    const MeasurementOutcome first =
        resilient.measureOutcome(batch[0]);
    EXPECT_EQ(MeasureStatus::Errored, first.status);
    EXPECT_TRUE(resilient.isQuarantined(batch[0]));

    // Quarantined classes are rejected without touching the inner
    // engine again.
    const std::uint64_t calls_before = inner.calls();
    const MeasurementOutcome second =
        resilient.measureOutcome(batch[0]);
    EXPECT_EQ(MeasureStatus::Quarantined, second.status);
    EXPECT_EQ(calls_before, inner.calls());
}

/**
 * Returns NaN for each class until it is marked recovered, then a
 * fixed value — the double-channel shape of a failure (e.g. a
 * quarantined outcome crossing ResilientEngine::measure()).
 */
class RecoveringEngine : public core::PerformanceEngine
{
  public:
    double
    measure(const Assignment &assignment) override
    {
        (void)assignment;
        ++calls_;
        return recovered_
            ? 100.0
            : std::numeric_limits<double>::quiet_NaN();
    }

    std::string name() const override { return "recovering"; }

    void recover() { recovered_ = true; }
    std::uint64_t calls() const { return calls_; }

  private:
    bool recovered_ = false;
    std::uint64_t calls_ = 0;
};

TEST(MemoizingRegression, FailedReadingIsNotCachedSingle)
{
    RecoveringEngine inner;
    MemoizingEngine memo(inner);

    const auto batch = drawBatch(1);
    EXPECT_TRUE(std::isnan(memo.measure(batch[0])));
    EXPECT_EQ(0u, memo.size());

    // Once the inner engine recovers, the class must be measurable
    // again — a cached NaN would poison it forever.
    inner.recover();
    EXPECT_EQ(100.0, memo.measure(batch[0]));
    EXPECT_EQ(1u, memo.size());
}

TEST(MemoizingRegression, FailedReadingIsNotCachedBatch)
{
    RecoveringEngine inner;
    MemoizingEngine memo(inner);

    const auto batch = drawBatch(8);
    std::vector<double> values(batch.size());
    memo.measureBatch(batch, values);
    for (const double v : values)
        EXPECT_TRUE(std::isnan(v));
    EXPECT_EQ(0u, memo.size());

    inner.recover();
    memo.measureBatch(batch, values);
    for (const double v : values)
        EXPECT_EQ(100.0, v);
}

TEST(MemoizingRegression, QuarantinedOutcomeIsNotCached)
{
    // The full audited chain: Memoizing(Resilient(inner)). The
    // quarantined class surfaces as NaN through the double channel;
    // before the fix the memoizer cached that NaN and the class
    // stayed invalid even after the quarantine was the only problem.
    ContractViolatingEngine inner(1u << 30, /*recover=*/false);
    ResilientOptions options;
    options.maxAttempts = 1;
    options.quarantineAfter = 1;
    ResilientEngine resilient(inner, options);
    MemoizingEngine memo(resilient);

    const auto batch = drawBatch(4);
    std::vector<double> values(batch.size());
    memo.measureBatch(batch, values);
    for (const double v : values)
        EXPECT_TRUE(std::isnan(v));

    // Nothing cached: neither the errored first readings nor the
    // quarantined rejections.
    EXPECT_EQ(0u, memo.size());

    // The outcome channel still reports the structured quarantine
    // status rather than a cache-classified Invalid.
    const MeasurementOutcome outcome =
        memo.measureOutcome(batch[0]);
    EXPECT_EQ(MeasureStatus::Quarantined, outcome.status);
}

TEST(ContractContainment, ViolationsCountAsFailuresInStats)
{
    ContractViolatingEngine inner(1u << 30, /*recover=*/false);
    ResilientOptions options;
    options.maxAttempts = 2;
    ResilientEngine resilient(inner, options);

    const auto batch = drawBatch(4);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);

    core::EngineStats stats;
    resilient.collectStats(stats);
    EXPECT_GE(stats.retries, batch.size());
}

} // anonymous namespace
