/**
 * @file
 * Exhaustive enumerator tests.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/enumerator.hh"

namespace
{

using namespace statsched::core;

const Topology t2 = Topology::ultraSparcT2();

TEST(Enumerator, CountsMatchPaper)
{
    EXPECT_EQ(AssignmentEnumerator(t2, 3).count(), 11u);
    // "the total number of possible task assignments is around 1500"
    // for the 6-thread workloads of Figures 1 and 3.
    EXPECT_EQ(AssignmentEnumerator(t2, 6).count(), 1526u);
}

TEST(Enumerator, EmitsDistinctCanonicalClasses)
{
    for (std::uint32_t tasks : {2u, 3u, 4u, 5u}) {
        const AssignmentEnumerator enumerator(t2, tasks);
        std::set<std::string> keys;
        std::uint64_t visited = enumerator.forEach(
            [&keys](const Assignment &a) {
                keys.insert(a.canonicalKey());
                return true;
            });
        EXPECT_EQ(keys.size(), visited) << tasks;
    }
}

TEST(Enumerator, AssignmentsAreValidAndComplete)
{
    const AssignmentEnumerator enumerator(t2, 4);
    enumerator.forEach([](const Assignment &a) {
        EXPECT_EQ(a.size(), 4u);
        EXPECT_TRUE(Assignment::isValid(a.topology(), a.contexts()));
        return true;
    });
}

TEST(Enumerator, EarlyStop)
{
    const AssignmentEnumerator enumerator(t2, 6);
    int seen = 0;
    const std::uint64_t visited = enumerator.forEach(
        [&seen](const Assignment &) {
            return ++seen < 10;
        });
    EXPECT_EQ(visited, 10u);
    EXPECT_EQ(seen, 10);
}

TEST(Enumerator, EnumerateAllMaterializes)
{
    const auto all = AssignmentEnumerator(t2, 3).enumerateAll();
    EXPECT_EQ(all.size(), 11u);
}

TEST(Enumerator, DeterministicOrder)
{
    const auto a = AssignmentEnumerator(t2, 4).enumerateAll();
    const auto b = AssignmentEnumerator(t2, 4).enumerateAll();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].contexts(), b[i].contexts());
}

TEST(Enumerator, TinyTopologyFullLoad)
{
    // 2 cores x 1 pipe x 2 strands, 4 tasks fill the machine:
    // partitions of {a,b,c,d} into two unlabeled pairs = 3.
    const Topology tiny{2, 1, 2};
    EXPECT_EQ(AssignmentEnumerator(tiny, 4).count(), 3u);
}

TEST(Enumerator, SingleTask)
{
    EXPECT_EQ(AssignmentEnumerator(t2, 1).count(), 1u);
}

} // anonymous namespace
