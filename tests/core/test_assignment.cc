/**
 * @file
 * Assignment representation tests.
 */

#include <gtest/gtest.h>

#include "core/assignment.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::core;
using statsched::stats::Rng;

const Topology t2 = Topology::ultraSparcT2();

TEST(Assignment, ValidityChecks)
{
    EXPECT_TRUE(Assignment::isValid(t2, {0, 1, 2}));
    EXPECT_TRUE(Assignment::isValid(t2, {63, 0, 31}));
    // Duplicate context.
    EXPECT_FALSE(Assignment::isValid(t2, {5, 5}));
    // Out of range.
    EXPECT_FALSE(Assignment::isValid(t2, {64}));
}

TEST(Assignment, AccessorsAndGrouping)
{
    // Task 0 -> ctx 0 (core 0, pipe 0); task 1 -> ctx 4 (core 0,
    // pipe 1); task 2 -> ctx 8 (core 1, pipe 2).
    const Assignment a(t2, {0, 4, 8});
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.contextOf(0), 0u);
    EXPECT_EQ(a.coreOf(0), 0u);
    EXPECT_EQ(a.coreOf(1), 0u);
    EXPECT_EQ(a.coreOf(2), 1u);
    EXPECT_EQ(a.pipeOf(1), 1u);

    const auto by_pipe = a.tasksByPipe();
    ASSERT_EQ(by_pipe.size(), 16u);
    EXPECT_EQ(by_pipe[0], (std::vector<TaskId>{0}));
    EXPECT_EQ(by_pipe[1], (std::vector<TaskId>{1}));
    EXPECT_EQ(by_pipe[2], (std::vector<TaskId>{2}));

    const auto by_core = a.tasksByCore();
    ASSERT_EQ(by_core.size(), 8u);
    EXPECT_EQ(by_core[0], (std::vector<TaskId>{0, 1}));
    EXPECT_EQ(by_core[1], (std::vector<TaskId>{2}));
}

TEST(Assignment, PaperStyleToString)
{
    // {[a][]}{[bc][]} from Section 2 of the paper: a alone on one
    // core, b and c inside one pipe of another core.
    const Assignment a(t2, {0, 8, 9});
    EXPECT_EQ(a.toString(), "{[t0][]}{[t1 t2][]}");
}

TEST(Assignment, CanonicalKeyInvariantUnderCorePermutation)
{
    // Same structure placed on different physical cores.
    const Assignment a(t2, {0, 8, 9});
    const Assignment b(t2, {56, 16, 17});   // cores 7 and 2
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(Assignment, CanonicalKeyInvariantUnderPipeSwap)
{
    // b, c in pipe 0 of core 1 vs pipe 1 of core 1.
    const Assignment a(t2, {0, 8, 9});
    const Assignment b(t2, {0, 12, 13});
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(Assignment, CanonicalKeyInvariantUnderStrandShuffle)
{
    const Assignment a(t2, {0, 1, 2});
    const Assignment b(t2, {3, 0, 1});
    // Same pipe, different strands and order: same multiset per
    // pipe... but tasks map to different strands, which is
    // irrelevant. Keys must match because the task sets per pipe
    // are equal.
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
}

TEST(Assignment, CanonicalKeyDistinguishesStructures)
{
    // Tasks together in one pipe vs split across pipes of one core.
    const Assignment together(t2, {0, 1});
    const Assignment split(t2, {0, 4});
    const Assignment cross_core(t2, {0, 8});
    EXPECT_NE(together.canonicalKey(), split.canonicalKey());
    EXPECT_NE(split.canonicalKey(), cross_core.canonicalKey());
    EXPECT_NE(together.canonicalKey(), cross_core.canonicalKey());
}

TEST(Assignment, CanonicalKeyDistinguishesTaskIdentity)
{
    // Task identity matters (heterogeneous tasks): {t0}{t1 t2} is
    // not {t1}{t0 t2}.
    const Assignment a(t2, {0, 8, 9});
    const Assignment b(t2, {8, 0, 9});
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
}

TEST(Assignment, RandomizedCanonicalInvariance)
{
    // Apply random hardware symmetries to a random assignment; the
    // key never changes.
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<ContextId> ctx;
        while (ctx.size() < 10) {
            const ContextId c =
                static_cast<ContextId>(rng.uniformInt(64));
            bool dup = false;
            for (ContextId e : ctx)
                dup |= (e == c);
            if (!dup)
                ctx.push_back(c);
        }
        const Assignment base(t2, ctx);

        // Random core permutation.
        std::vector<std::uint32_t> core_perm(8);
        for (std::uint32_t i = 0; i < 8; ++i)
            core_perm[i] = i;
        for (std::size_t i = 7; i > 0; --i) {
            std::swap(core_perm[i],
                      core_perm[rng.uniformInt(i + 1)]);
        }
        // Random pipe swap mask per core, strand rotation per pipe.
        std::vector<ContextId> mapped(ctx.size());
        for (std::size_t t = 0; t < ctx.size(); ++t) {
            const std::uint32_t core = t2.coreOf(ctx[t]);
            std::uint32_t pipe_in_core = t2.pipeInCore(ctx[t]);
            const std::uint32_t strand = t2.strandOf(ctx[t]);
            if ((rng.next() >> 13) & 1)
                pipe_in_core ^= 0;   // keep
            const std::uint32_t new_core = core_perm[core];
            mapped[t] = (new_core * 2 + pipe_in_core) * 4 + strand;
        }
        const Assignment permuted(t2, mapped);
        EXPECT_EQ(base.canonicalKey(), permuted.canonicalKey());
    }
}

} // anonymous namespace
