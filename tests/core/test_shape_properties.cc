/**
 * @file
 * Cross-topology property sweeps: counting, enumeration, sampling
 * and canonicalization must agree on any processor shape (the
 * paper's architecture-independence claim).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/assignment_space.hh"
#include "core/baselines.hh"
#include "core/enumerator.hh"
#include "core/sampler.hh"

namespace
{

using namespace statsched::core;

class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
  protected:
    Topology
    topo() const
    {
        const auto [c, p, s] = GetParam();
        return Topology{static_cast<std::uint32_t>(c),
                        static_cast<std::uint32_t>(p),
                        static_cast<std::uint32_t>(s)};
    }
};

TEST_P(ShapeSweep, CountMatchesEnumerationForSmallWorkloads)
{
    const Topology shape = topo();
    const AssignmentSpace space(shape);
    const std::uint32_t max_tasks =
        std::min<std::uint32_t>(5, shape.contexts());
    for (std::uint32_t t = 1; t <= max_tasks; ++t) {
        const AssignmentEnumerator enumerator(shape, t);
        const auto count = space.countAssignments(t);
        ASSERT_TRUE(count.fitsUint64());
        EXPECT_EQ(count.toUint64(), enumerator.count())
            << shape.shapeString() << " t=" << t;
    }
}

TEST_P(ShapeSweep, EnumeratorEmitsDistinctClasses)
{
    const Topology shape = topo();
    const std::uint32_t tasks =
        std::min<std::uint32_t>(4, shape.contexts());
    const AssignmentEnumerator enumerator(shape, tasks);
    std::set<std::string> keys;
    const std::uint64_t visited = enumerator.forEach(
        [&keys](const Assignment &a) {
            keys.insert(a.canonicalKey());
            return true;
        });
    EXPECT_EQ(keys.size(), visited) << shape.shapeString();
}

TEST_P(ShapeSweep, BothSamplersProduceValidAssignments)
{
    const Topology shape = topo();
    // The rejection loop's acceptance collapses as the workload
    // approaches machine capacity, so it is exercised at quarter
    // load; Fisher-Yates handles half load on every shape.
    const std::uint32_t quarter = std::max<std::uint32_t>(
        1, shape.contexts() / 4);
    RandomAssignmentSampler rejection(shape, quarter, 31,
                                      SamplingMethod::RejectionPaper);
    for (int i = 0; i < 25; ++i) {
        const Assignment a = rejection.draw();
        EXPECT_TRUE(Assignment::isValid(shape, a.contexts()));
    }

    const std::uint32_t half = std::max<std::uint32_t>(
        1, shape.contexts() / 2);
    RandomAssignmentSampler fisher(
        shape, half, 31, SamplingMethod::PartialFisherYates);
    for (int i = 0; i < 25; ++i) {
        const Assignment a = fisher.draw();
        EXPECT_TRUE(Assignment::isValid(shape, a.contexts()));
    }
}

TEST_P(ShapeSweep, LinuxLikeStaysBalanced)
{
    const Topology shape = topo();
    for (std::uint32_t tasks = 1; tasks <= shape.contexts();
         tasks += std::max<std::uint32_t>(1,
                                          shape.contexts() / 5)) {
        const Assignment a = linuxLikeAssignment(shape, tasks);
        std::vector<int> per_core(shape.cores, 0);
        for (TaskId t = 0; t < tasks; ++t)
            ++per_core[a.coreOf(t)];
        const auto [lo, hi] =
            std::minmax_element(per_core.begin(), per_core.end());
        EXPECT_LE(*hi - *lo, 1)
            << shape.shapeString() << " tasks=" << tasks;
    }
}

TEST_P(ShapeSweep, LabeledPlacementCountMatchesFormula)
{
    const Topology shape = topo();
    const AssignmentSpace space(shape);
    const std::uint32_t v = shape.contexts();
    const std::uint32_t t = std::min<std::uint32_t>(3, v);
    std::uint64_t expected = 1;
    for (std::uint32_t i = 0; i < t; ++i)
        expected *= (v - i);
    EXPECT_EQ(space.countLabeledPlacements(t).toUint64(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 4),
                      std::make_tuple(2, 1, 2),
                      std::make_tuple(2, 2, 2),
                      std::make_tuple(4, 2, 4),
                      std::make_tuple(8, 2, 4),
                      std::make_tuple(8, 1, 8),
                      std::make_tuple(3, 3, 3),
                      std::make_tuple(16, 4, 2)));

} // anonymous namespace
