/**
 * @file
 * Local-search refinement tests.
 */

#include <gtest/gtest.h>

#include "core/baselines.hh"
#include "core/local_search.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

/** Engine rewarding spread: distinct pipes used. */
class PipeSpreadEngine : public core::PerformanceEngine
{
  public:
    double
    measure(const Assignment &assignment) override
    {
        std::vector<bool> used(assignment.topology().pipes(), false);
        for (core::TaskId t = 0; t < assignment.size(); ++t)
            used[assignment.pipeOf(t)] = true;
        double v = 0.0;
        for (bool u : used)
            v += u ? 1.0 : 0.0;
        return v;
    }

    std::string name() const override { return "pipe-spread"; }
};

TEST(LocalSearch, ClimbsToTheSpreadOptimum)
{
    // Start fully packed; the optimum uses 6 distinct pipes.
    PipeSpreadEngine engine;
    const Assignment packed = core::packedAssignment(t2, 6);
    ASSERT_EQ(engine.measure(packed), 2.0);

    core::LocalSearchOptions options;
    options.budget = 2000;
    options.movesPerRound = 12;
    options.patience = 20;
    const auto result =
        core::localSearchRefine(engine, packed, options);
    EXPECT_DOUBLE_EQ(result.bestPerformance, 6.0);
    EXPECT_GT(result.improvements, 0u);
}

TEST(LocalSearch, NeverReturnsWorseThanStart)
{
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 17);
    const Assignment start = sampler.draw();
    const double start_value = engine.deterministic(start);

    core::LocalSearchOptions options;
    options.budget = 150;
    const auto result =
        core::localSearchRefine(engine, start, options);
    EXPECT_GE(result.bestPerformance, start_value * 0.999);
    EXPECT_LE(result.measurements, 150u);
    EXPECT_TRUE(Assignment::isValid(t2, result.best.contexts()));
}

TEST(LocalSearch, RespectsBudget)
{
    sim::SimulatedEngine inner(
        sim::makeWorkload(sim::Benchmark::Stateful, 8));
    core::MeteredEngine engine(inner);
    core::RandomAssignmentSampler sampler(t2, 24, 18);
    core::LocalSearchOptions options;
    options.budget = 73;
    options.patience = 1000;
    core::localSearchRefine(engine, sampler.draw(), options);
    EXPECT_LE(engine.stats().measurements, 73u);
}

TEST(LocalSearch, ImprovesRandomStartsOnTheSimulator)
{
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdIntAdd, 2));
    core::RandomAssignmentSampler sampler(t2, 6, 19);
    // A mediocre random start should be improvable.
    Assignment start = sampler.draw();
    core::LocalSearchOptions options;
    options.budget = 600;
    options.patience = 10;
    const auto result =
        core::localSearchRefine(engine, start, options);
    EXPECT_GT(result.bestPerformance,
              engine.deterministic(start) * 0.999);
}

TEST(LocalSearch, FullMachineFallsBackToSwaps)
{
    PipeSpreadEngine engine;
    const Assignment full = core::packedAssignment(t2, 64);
    core::LocalSearchOptions options;
    options.budget = 60;
    const auto result =
        core::localSearchRefine(engine, full, options);
    // All pipes are necessarily used; no crash, no regression.
    EXPECT_DOUBLE_EQ(result.bestPerformance, 16.0);
}

} // anonymous namespace
