/**
 * @file
 * Random-assignment sampler tests (the paper's Step 1 procedure).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/assignment_space.hh"
#include "core/enumerator.hh"
#include "core/sampler.hh"

namespace
{

using namespace statsched::core;

const Topology t2 = Topology::ultraSparcT2();

TEST(Sampler, ProducesValidAssignments)
{
    RandomAssignmentSampler sampler(t2, 24, 1);
    for (int i = 0; i < 200; ++i) {
        const Assignment a = sampler.draw();
        EXPECT_EQ(a.size(), 24u);
        EXPECT_TRUE(Assignment::isValid(t2, a.contexts()));
    }
    EXPECT_EQ(sampler.produced(), 200u);
    // Collisions force redraws for 24 tasks on 64 contexts.
    EXPECT_GT(sampler.attempts(), sampler.produced());
}

TEST(Sampler, DeterministicBySeed)
{
    RandomAssignmentSampler a(t2, 10, 42);
    RandomAssignmentSampler b(t2, 10, 42);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.draw().contexts(), b.draw().contexts());
}

TEST(Sampler, DifferentSeedsDiffer)
{
    RandomAssignmentSampler a(t2, 10, 1);
    RandomAssignmentSampler b(t2, 10, 2);
    int distinct = 0;
    for (int i = 0; i < 20; ++i) {
        if (a.draw().contexts() != b.draw().contexts())
            ++distinct;
    }
    EXPECT_GE(distinct, 19);
}

TEST(Sampler, DrawSampleBatches)
{
    RandomAssignmentSampler sampler(t2, 6, 9);
    const auto sample = sampler.drawSample(100);
    EXPECT_EQ(sample.size(), 100u);
}

TEST(Sampler, FullMachineStillTerminates)
{
    // 4 tasks on a 4-context machine: only permutations are valid,
    // acceptance 4!/4^4 = 9.4%, rejection loop must still finish.
    const Topology tiny{1, 2, 2};
    RandomAssignmentSampler sampler(tiny, 4, 3);
    for (int i = 0; i < 100; ++i) {
        const Assignment a = sampler.draw();
        EXPECT_TRUE(Assignment::isValid(tiny, a.contexts()));
    }
}

TEST(Sampler, UniformOverLabeledPlacements)
{
    // On a tiny machine every labeled placement should appear with
    // equal frequency: chi-squared over all 4*3=12 ordered pairs.
    const Topology tiny{2, 1, 2};
    RandomAssignmentSampler sampler(tiny, 2, 7);
    std::map<std::pair<ContextId, ContextId>, int> counts;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        const Assignment a = sampler.draw();
        ++counts[{a.contextOf(0), a.contextOf(1)}];
    }
    ASSERT_EQ(counts.size(), 12u);
    const double expected = n / 12.0;
    double chi2 = 0.0;
    for (const auto &[key, c] : counts)
        chi2 += (c - expected) * (c - expected) / expected;
    // 99.9% quantile of chi2 with 11 df = 31.26.
    EXPECT_LT(chi2, 31.26);
}

TEST(Sampler, ClassFrequencyProportionalToLabelings)
{
    // Canonical classes are hit proportionally to their labeled
    // multiplicity: on 2 cores x 1 pipe x 2 strands with 2 tasks,
    // "together" has 2 cores x 2 orders = 4 labelings... both
    // classes actually have equal labelings (4 and 8): together =
    // 2 cores x 2 strand orders = 4; split = 2x2 contexts x ... = 8.
    // Expected ratio split:together = 2:1.
    const Topology tiny{2, 1, 2};
    RandomAssignmentSampler sampler(tiny, 2, 8);
    int together = 0;
    int split = 0;
    for (int i = 0; i < 30000; ++i) {
        const Assignment a = sampler.draw();
        if (a.coreOf(0) == a.coreOf(1))
            ++together;
        else
            ++split;
    }
    const double ratio = static_cast<double>(split) / together;
    EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Sampler, FisherYatesProducesValidAssignments)
{
    RandomAssignmentSampler sampler(t2, 48, 13,
                                    SamplingMethod::PartialFisherYates);
    for (int i = 0; i < 100; ++i) {
        const Assignment a = sampler.draw();
        EXPECT_EQ(a.size(), 48u);
        EXPECT_TRUE(Assignment::isValid(t2, a.contexts()));
    }
    // No rejection loop: one attempt per draw.
    EXPECT_EQ(sampler.attempts(), sampler.produced());
}

TEST(Sampler, FisherYatesMatchesRejectionDistribution)
{
    // Both methods are uniform over labeled placements: compare the
    // together/split core statistic on the tiny topology.
    const Topology tiny{2, 1, 2};
    RandomAssignmentSampler fy(tiny, 2, 21,
                               SamplingMethod::PartialFisherYates);
    int together = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const Assignment a = fy.draw();
        together += (a.coreOf(0) == a.coreOf(1)) ? 1 : 0;
    }
    // P(same core) = 1/3 under the uniform labeled distribution.
    EXPECT_NEAR(static_cast<double>(together) / n, 1.0 / 3.0, 0.01);
}

TEST(Sampler, FisherYatesHandlesFullMachine)
{
    RandomAssignmentSampler sampler(t2, 64, 14,
                                    SamplingMethod::PartialFisherYates);
    const Assignment a = sampler.draw();
    EXPECT_TRUE(Assignment::isValid(t2, a.contexts()));
}

} // anonymous namespace
