/**
 * @file
 * Batch, parallel and memoizing engine tests: the parallel path must
 * be bit-identical to the serial one, the cache must replay exact
 * values, and the whole stack must compose. The parallel tests are
 * also the ThreadSanitizer targets (build with
 * -DSTATSCHED_SANITIZE=thread).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "core/estimator.hh"
#include "core/iterative.hh"
#include "core/local_search.hh"
#include "core/memoizing_engine.hh"
#include "core/parallel_engine.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

sim::SimulatedEngine
makeSim()
{
    return sim::SimulatedEngine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
}

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed = 11)
{
    core::RandomAssignmentSampler sampler(t2, 24, seed);
    return sampler.drawSample(n);
}

TEST(BatchApi, DefaultBatchMatchesSerialMeasure)
{
    // Two identically-seeded engines: one measured item by item, one
    // through measureBatch. Per-index noise makes them bit-equal.
    auto serial = makeSim();
    auto batched = makeSim();
    const auto batch = drawBatch(64);

    std::vector<double> expected;
    expected.reserve(batch.size());
    for (const auto &a : batch)
        expected.push_back(serial.measure(a));

    std::vector<double> got(batch.size());
    batched.measureBatch(batch, got);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(expected[i], got[i]) << "index " << i;
}

TEST(ParallelEngine, BitIdenticalToSerialBatch)
{
    auto reference = makeSim();
    auto inner = makeSim();
    core::ParallelEngine parallel(inner, 8);
    const auto batch = drawBatch(500);

    std::vector<double> expected(batch.size());
    reference.measureBatch(batch, expected);

    std::vector<double> got(batch.size());
    parallel.measureBatch(batch, got);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(expected[i], got[i]) << "index " << i;
}

TEST(ParallelEngine, RepeatedBatchesContinueTheNoiseStream)
{
    // Two consecutive parallel batches must equal one serial run of
    // the same 2n measurements (the cursor advances per batch).
    auto reference = makeSim();
    auto inner = makeSim();
    core::ParallelEngine parallel(inner, 4);
    const auto batch = drawBatch(120);

    std::vector<double> expected(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        expected[i] = reference.measure(batch[i]);

    std::vector<double> first(60);
    std::vector<double> second(60);
    parallel.measureBatch(std::span(batch).first(60), first);
    parallel.measureBatch(std::span(batch).subspan(60), second);
    for (std::size_t i = 0; i < 60; ++i) {
        EXPECT_EQ(expected[i], first[i]);
        EXPECT_EQ(expected[60 + i], second[i]);
    }
}

TEST(ParallelEngine, SerialAndParallelIterativeRunsAreIdentical)
{
    // The acceptance criterion of the batch redesign: the full
    // iterative algorithm, seeded identically, returns the same
    // result for --threads 1 and --threads 8.
    core::IterativeOptions options;
    options.initialSample = 400;
    options.incrementSample = 100;
    options.acceptableLoss = 0.02;
    options.maxSample = 1500;

    auto sim1 = makeSim();
    auto sim8 = makeSim();
    core::ParallelEngine one(sim1, 1);
    core::ParallelEngine eight(sim8, 8);
    const auto serial =
        core::iterativeAssignmentSearch(one, t2, 24, 5, options);
    const auto parallel =
        core::iterativeAssignmentSearch(eight, t2, 24, 5, options);

    EXPECT_EQ(serial.satisfied, parallel.satisfied);
    EXPECT_EQ(serial.totalSampled, parallel.totalSampled);
    ASSERT_EQ(serial.steps.size(), parallel.steps.size());
    for (std::size_t i = 0; i < serial.steps.size(); ++i) {
        EXPECT_EQ(serial.steps[i].bestObserved,
                  parallel.steps[i].bestObserved);
        EXPECT_EQ(serial.steps[i].upb, parallel.steps[i].upb);
        EXPECT_EQ(serial.steps[i].upbUpper,
                  parallel.steps[i].upbUpper);
        EXPECT_EQ(serial.steps[i].loss, parallel.steps[i].loss);
    }
    ASSERT_TRUE(serial.final.bestAssignment.has_value());
    ASSERT_TRUE(parallel.final.bestAssignment.has_value());
    EXPECT_EQ(serial.final.bestAssignment->contexts(),
              parallel.final.bestAssignment->contexts());
    EXPECT_EQ(serial.final.sample, parallel.final.sample);
}

TEST(ParallelEngine, FallsBackForEnginesWithoutKernel)
{
    // An engine with sequential hidden state publishes no kernel;
    // the pool must degrade to the serial loop, not crash or reorder.
    class SequentialEngine : public core::PerformanceEngine
    {
      public:
        double
        measure(const Assignment &) override
        {
            return static_cast<double>(++calls_);
        }
        std::string name() const override { return "sequential"; }

      private:
        std::uint64_t calls_ = 0;
    };

    SequentialEngine inner;
    core::ParallelEngine parallel(inner, 8);
    const auto batch = drawBatch(16);
    std::vector<double> out(batch.size());
    parallel.measureBatch(batch, out);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<double>(i + 1));
}

TEST(MemoizingEngine, HitReplaysTheFreshValue)
{
    auto sim = makeSim();
    core::MemoizingEngine memo(sim);
    const auto batch = drawBatch(4);

    const double fresh = memo.measure(batch[0]);
    EXPECT_EQ(memo.hitCount(), 0u);
    // Same assignment again: served from cache, identical value even
    // though a fresh measurement would draw different noise.
    EXPECT_EQ(memo.measure(batch[0]), fresh);
    EXPECT_EQ(memo.hitCount(), 1u);
}

TEST(MemoizingEngine, KeysBySymmetryClassNotLabeling)
{
    auto sim = makeSim();
    core::MemoizingEngine memo(sim);

    // Task t on context t versus the same placement shifted to the
    // mirror half of the chip: different labels, same canonical
    // class, so the second lookup must hit.
    std::vector<core::ContextId> packed;
    std::vector<core::ContextId> mirrored;
    for (core::ContextId c = 0; c < 24; ++c) {
        packed.push_back(c);
        mirrored.push_back(t2.contexts() - 24 + c);
    }
    const Assignment a(t2, packed);
    const Assignment b(t2, mirrored);
    ASSERT_EQ(a.canonicalKey(), b.canonicalKey());

    const double va = memo.measure(a);
    const double vb = memo.measure(b);
    EXPECT_EQ(va, vb);
    EXPECT_EQ(memo.hitCount(), 1u);
    EXPECT_EQ(memo.size(), 1u);
}

TEST(MemoizingEngine, BatchDeduplicatesWithinAndAcrossBatches)
{
    auto sim = makeSim();
    core::MeteredEngine meter(sim);
    core::MemoizingEngine memo(meter);

    auto base = drawBatch(10);
    std::vector<Assignment> batch(base);
    batch.push_back(base[3]);   // duplicate inside the batch
    batch.push_back(base[7]);

    std::vector<double> out(batch.size());
    memo.measureBatch(batch, out);
    EXPECT_EQ(out[10], out[3]);
    EXPECT_EQ(out[11], out[7]);
    // Only the 10 distinct assignments reached the inner engine.
    EXPECT_EQ(meter.stats().measurements, 10u);
    EXPECT_EQ(memo.hitCount(), 2u);

    // A second identical batch is served fully from the cache.
    std::vector<double> replay(batch.size());
    memo.measureBatch(batch, replay);
    EXPECT_EQ(meter.stats().measurements, 10u);
    EXPECT_EQ(replay, out);
}

TEST(MeteredEngine, StatsComposeAcrossTheFullStack)
{
    auto sim = makeSim();
    core::ParallelEngine parallel(sim, 4);
    core::MemoizingEngine memo(parallel);
    core::MeteredEngine meter(memo);

    auto batch = drawBatch(50);
    batch.push_back(batch[0]);
    batch.push_back(batch[1]);
    std::vector<double> out(batch.size());
    meter.measureBatch(batch, out);
    meter.measure(batch[2]);   // one more, a guaranteed cache hit

    const core::EngineStats stats = meter.stats();
    EXPECT_EQ(stats.measurements, 53u);
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.cacheHits, 3u);
    EXPECT_EQ(stats.cacheMisses, 50u);
    EXPECT_NEAR(stats.cacheHitRate(), 3.0 / 53.0, 1e-12);
    // Modeled time charges only the measurements that reached the
    // simulator (1.5 s each), not the cache hits.
    EXPECT_NEAR(stats.modeledSeconds, 50 * 1.5, 1e-9);
}

TEST(MeteredEngine, CountsThroughLocalSearchBudget)
{
    auto sim = makeSim();
    core::MeteredEngine meter(sim);
    core::RandomAssignmentSampler sampler(t2, 24, 18);
    core::LocalSearchOptions options;
    options.budget = 73;
    options.patience = 1000;
    core::localSearchRefine(meter, sampler.draw(), options);
    EXPECT_LE(meter.stats().measurements, 73u);
}

TEST(MeteredEngine, UnsanctionedOrderingClampsInsteadOfGoingNegative)
{
    // Meter BELOW the memoizer (against the ordering rules in
    // performance_engine.hh): the meter never sees the cache hits, so
    // the memoizer's refund would drive modeledSeconds negative. The
    // clamp keeps the report at zero rather than nonsense.
    auto sim = makeSim();
    core::MeteredEngine meter(sim);
    core::MemoizingEngine memo(meter);

    const auto batch = drawBatch(1);
    memo.measure(batch[0]);
    memo.measure(batch[0]);   // cache hit the meter never saw

    core::EngineStats stats;
    memo.collectStats(stats);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_GE(stats.modeledSeconds, 0.0);
    // The sanctioned ordering reports the same workload correctly.
    auto sim2 = makeSim();
    core::MemoizingEngine memo2(sim2);
    core::MeteredEngine meter2(memo2);
    meter2.measure(batch[0]);
    meter2.measure(batch[0]);
    EXPECT_NEAR(meter2.stats().modeledSeconds, 1.5, 1e-12);
}

TEST(MeteredEngine, OutcomeChannelCountsLikeTheDoubleChannel)
{
    auto sim = makeSim();
    core::MeteredEngine meter(sim);
    const auto batch = drawBatch(6);
    std::vector<core::MeasurementOutcome> outcomes(batch.size());
    meter.measureBatchOutcome(batch, outcomes);
    meter.measureOutcome(batch[0]);

    const core::EngineStats stats = meter.stats();
    EXPECT_EQ(stats.measurements, 7u);
    EXPECT_EQ(stats.batches, 1u);
    for (const auto &outcome : outcomes)
        EXPECT_TRUE(outcome.ok());
}

TEST(MemoizingEngine, FailedOutcomesAreNotCached)
{
    // First reading fails, second succeeds: the failure must not be
    // replayed from the cache.
    class FailOnceEngine : public core::PerformanceEngine
    {
      public:
        double
        measure(const Assignment &) override
        {
            return first_++ == 0
                ? std::numeric_limits<double>::quiet_NaN() : 42.0;
        }
        std::string name() const override { return "fail-once"; }

      private:
        int first_ = 0;
    };

    FailOnceEngine inner;
    core::MemoizingEngine memo(inner);
    const auto a = drawBatch(1)[0];
    EXPECT_FALSE(memo.measureOutcome(a).ok());
    const auto second = memo.measureOutcome(a);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value, 42.0);
    // Now cached: replayed without a third inner measurement.
    EXPECT_EQ(memo.measureOutcome(a).value, 42.0);
    EXPECT_EQ(memo.hitCount(), 1u);
}

TEST(ParallelEngine, ConcurrentStackIsRaceFree)
{
    // Large parallel batches through the full decorated stack while a
    // second thread polls the statistics — the ThreadSanitizer
    // workout for the engine layer.
    auto sim = makeSim();
    core::ParallelEngine parallel(sim, 8);
    core::MemoizingEngine memo(parallel);
    core::MeteredEngine meter(memo);

    std::atomic<bool> done{false};
    std::thread poller([&] {
        core::EngineStats last;
        while (!done.load(std::memory_order_acquire))
            last = meter.stats();
    });

    const auto batch = drawBatch(400, 23);
    std::vector<double> out(batch.size());
    for (int round = 0; round < 3; ++round)
        meter.measureBatch(batch, out);
    done.store(true, std::memory_order_release);
    poller.join();

    const auto stats = meter.stats();
    EXPECT_EQ(stats.measurements, 3u * 400u);
    // Rounds 2 and 3 hit the cache entirely.
    EXPECT_GE(stats.cacheHits, 2u * 400u);
}

} // anonymous namespace
