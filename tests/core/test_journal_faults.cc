/**
 * @file
 * Journal fault-injection suite: the disk is allowed to fail at EVERY
 * byte offset a campaign ever writes, under both error policies, and
 * the invariant is always the same — the process never crashes, the
 * policy latches (Abort fails the journal, Degrade drops to
 * memory-only recording), and recovery afterwards trusts exactly a
 * batch-group prefix of what a clean run would have written. Segment
 * rotation, compaction, stale-segment deletion and torn-chain
 * recovery ride the same harness.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "base/io.hh"
#include "core/journal.hh"
#include "core/topology.hh"

namespace
{

using namespace statsched;
using base::io::FaultPlan;
using base::io::faultInjectingFileSinkFactory;
using core::CheckpointKind;
using core::JournalBatch;
using core::JournalCheckpoint;
using core::JournalConfig;
using core::JournalErrorPolicy;
using core::JournalHeader;
using core::JournalRecovery;
using core::journalSegmentPath;
using core::MeasurementJournal;
using core::MeasurementOutcome;
using core::MeasureStatus;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

/** RAII temp journal path; removes the file, its segment chain and
 *  any compaction temp on scope exit. */
class TempChain
{
  public:
    explicit TempChain(const char *stem)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("statsched_jfault_test_") + stem))
                    .string())
    {
        cleanup();
    }

    ~TempChain() { cleanup(); }

    const std::string &str() const { return path_; }

  private:
    void
    cleanup()
    {
        std::filesystem::remove(path_);
        for (std::uint32_t i = 0;; ++i) {
            const std::string seg = journalSegmentPath(path_, i);
            const bool any =
                std::filesystem::remove(seg) |
                std::filesystem::remove(seg + ".tmp");
            if (!any)
                break;
        }
    }

    std::string path_;
};

JournalHeader
testHeader(std::uint64_t seed = 7)
{
    return JournalHeader::forCampaign(t2, 24, seed, 0xabc);
}

MeasurementOutcome
okOutcome(double value, std::uint32_t attempts = 1)
{
    MeasurementOutcome o;
    o.value = value;
    o.status = MeasureStatus::Ok;
    o.attempts = attempts;
    return o;
}

/**
 * The canonical campaign write sequence every fault test replays:
 * two batch groups, an interior Progress checkpoint and a final
 * Complete checkpoint. Safe to call on a journal in any state —
 * exactly what the engine does when the disk dies mid-campaign.
 */
void
writeSequence(MeasurementJournal &journal)
{
    journal.beginBatch(0, 2);
    journal.appendMeasurement(11, okOutcome(1.5));
    journal.appendMeasurement(22, okOutcome(2.5, 3));
    journal.sync();

    JournalCheckpoint mid;
    mid.kind = CheckpointKind::Progress;
    mid.round = 1;
    mid.attempted = 2;
    mid.sampled = 2;
    mid.best = 2.5;
    journal.appendCheckpoint(mid);
    journal.sync();

    journal.beginBatch(1, 1);
    journal.appendMeasurement(33, okOutcome(-4.25, 2));
    journal.sync();

    JournalCheckpoint done;
    done.kind = CheckpointKind::Complete;
    done.round = 2;
    done.attempted = 3;
    done.sampled = 3;
    done.best = 2.5;
    journal.appendCheckpoint(done);
    journal.sync();
}

/** Recovered batches must be a (possibly empty) prefix of the clean
 *  run's batches — identical groups, never a partial one. */
void
expectBatchPrefix(const JournalRecovery &got,
                  const JournalRecovery &reference,
                  const std::string &context)
{
    ASSERT_LE(got.batches.size(), reference.batches.size())
        << context;
    for (std::size_t b = 0; b < got.batches.size(); ++b) {
        const JournalBatch &g = got.batches[b];
        const JournalBatch &r = reference.batches[b];
        EXPECT_EQ(g.round, r.round) << context << " batch " << b;
        ASSERT_EQ(g.measurements.size(), r.measurements.size())
            << context << " batch " << b;
        for (std::size_t i = 0; i < g.measurements.size(); ++i) {
            EXPECT_EQ(g.measurements[i].keyHash,
                      r.measurements[i].keyHash)
                << context << " batch " << b << " item " << i;
            EXPECT_EQ(g.measurements[i].outcome.value,
                      r.measurements[i].outcome.value)
                << context << " batch " << b << " item " << i;
            EXPECT_EQ(g.measurements[i].outcome.status,
                      r.measurements[i].outcome.status)
                << context << " batch " << b << " item " << i;
            EXPECT_EQ(g.measurements[i].outcome.attempts,
                      r.measurements[i].outcome.attempts)
                << context << " batch " << b << " item " << i;
        }
    }
}

/** Clean-run recovery for the canonical sequence (and its byte count
 *  via `totalBytes`), in single-file or segmented layout. */
JournalRecovery
cleanReference(const char *stem, std::uint64_t segmentBytes,
               std::uint64_t &totalBytes)
{
    TempChain path(stem);
    JournalConfig config;
    config.segmentBytes = segmentBytes;
    MeasurementJournal journal(path.str(), testHeader(), config);
    writeSequence(journal);
    totalBytes = journal.bytesWritten();
    return core::recoverJournal(path.str());
}

/** One fault-sweep iteration: the disk dies after `failAt` bytes.
 *  `stem` must be unique per TEST so parallel ctest runs never share
 *  a temp path. */
void
sweepOnce(const char *stem, JournalErrorPolicy policy,
          std::uint64_t segmentBytes, std::uint64_t failAt,
          const JournalRecovery &reference)
{
    const std::string context = std::string("policy=") +
        core::journalErrorPolicyName(policy) +
        " segmentBytes=" + std::to_string(segmentBytes) +
        " failAt=" + std::to_string(failAt);
    TempChain path(stem);

    auto plan = std::make_shared<FaultPlan>();
    plan->failAfterBytes = failAt;
    JournalConfig config;
    config.onError = policy;
    config.segmentBytes = segmentBytes;
    config.sinkFactory = faultInjectingFileSinkFactory(plan);
    int degradeCalls = 0;
    config.onDegrade = [&degradeCalls](const std::string &detail) {
        ++degradeCalls;
        EXPECT_FALSE(detail.empty());
    };

    MeasurementJournal journal(path.str(), testHeader(), config);
    writeSequence(journal); // must never crash, whatever the offset

    EXPECT_TRUE(plan->triggered) << context;
    EXPECT_FALSE(journal.recording()) << context;
    if (policy == JournalErrorPolicy::Abort) {
        EXPECT_TRUE(journal.failed()) << context;
        EXPECT_FALSE(journal.degraded()) << context;
        EXPECT_EQ(degradeCalls, 0) << context;
    } else {
        EXPECT_TRUE(journal.degraded()) << context;
        EXPECT_FALSE(journal.failed()) << context;
        EXPECT_EQ(degradeCalls, 1) << context;
    }
    EXPECT_FALSE(journal.errorDetail().empty()) << context;

    // Post-latch appends are counted no-ops, never writes.
    const std::uint64_t droppedBefore = journal.droppedRecords();
    journal.appendCheckpoint(JournalCheckpoint());
    EXPECT_EQ(journal.droppedRecords(), droppedBefore + 1) << context;

    // Whatever landed on disk, recovery trusts only an intact
    // batch-group prefix of the clean run.
    const JournalRecovery r = core::recoverJournal(path.str());
    if (!r.headerValid) {
        // The fault tore the very first header: nothing to resume,
        // reported as unusable, not as a crash.
        EXPECT_FALSE(r.error.empty()) << context;
        EXPECT_TRUE(r.batches.empty()) << context;
        return;
    }
    EXPECT_TRUE(r.header == reference.header) << context;
    expectBatchPrefix(r, reference, context);
}

TEST(JournalFaults, CleanReferenceSequenceRecoversWhole)
{
    std::uint64_t total = 0;
    const JournalRecovery reference =
        cleanReference("ref_single", 0, total);
    ASSERT_TRUE(reference.headerValid) << reference.error;
    ASSERT_EQ(reference.batches.size(), 2u);
    EXPECT_EQ(reference.measurementCount(), 3u);
    EXPECT_EQ(reference.checkpoints.size(), 2u);
    EXPECT_FALSE(reference.segmented);
    EXPECT_GT(total, 0u);
}

TEST(JournalFaults, EveryWriteOffsetAbortsCleanly)
{
    std::uint64_t total = 0;
    const JournalRecovery reference =
        cleanReference("ref_abort", 0, total);
    ASSERT_TRUE(reference.headerValid) << reference.error;
    for (std::uint64_t failAt = 0; failAt < total; ++failAt)
        sweepOnce("sweep_abort", JournalErrorPolicy::Abort, 0,
                  failAt, reference);
}

TEST(JournalFaults, EveryWriteOffsetDegradesWithDurablePrefix)
{
    std::uint64_t total = 0;
    const JournalRecovery reference =
        cleanReference("ref_degrade", 0, total);
    ASSERT_TRUE(reference.headerValid) << reference.error;
    for (std::uint64_t failAt = 0; failAt < total; ++failAt)
        sweepOnce("sweep_degrade", JournalErrorPolicy::Degrade, 0,
                  failAt, reference);
}

TEST(JournalFaults, EveryWriteOffsetSurvivesWithSegmentRotation)
{
    // The segmented journal writes MORE bytes (per-segment headers,
    // compaction rewrites), and the budget is cumulative across
    // sinks, so sweeping the single-file total still reaches every
    // interesting boundary: header writes, rotation seals, compaction
    // temp files. Both policies, one pass each.
    std::uint64_t total = 0;
    const JournalRecovery reference =
        cleanReference("ref_seg", 64, total);
    ASSERT_TRUE(reference.headerValid) << reference.error;
    EXPECT_TRUE(reference.segmented);
    for (std::uint64_t failAt = 0; failAt < total; ++failAt) {
        sweepOnce("sweep_seg", JournalErrorPolicy::Abort, 64, failAt,
                  reference);
        sweepOnce("sweep_seg", JournalErrorPolicy::Degrade, 64,
                  failAt, reference);
    }
}

TEST(JournalFaults, SegmentedRecoveryMatchesSingleFileBatches)
{
    std::uint64_t singleTotal = 0, segTotal = 0;
    const JournalRecovery single =
        cleanReference("layout_single", 0, singleTotal);
    const JournalRecovery segmented =
        cleanReference("layout_seg", 64, segTotal);
    ASSERT_TRUE(single.headerValid) << single.error;
    ASSERT_TRUE(segmented.headerValid) << segmented.error;

    // Same replay substance regardless of on-disk layout.
    ASSERT_EQ(segmented.batches.size(), single.batches.size());
    expectBatchPrefix(segmented, single, "segmented layout");
    EXPECT_TRUE(segmented.segmented);
    EXPECT_GT(segmented.segmentFiles.size(), 1u);
    EXPECT_TRUE(segmented.staleSegments.empty());
    EXPECT_EQ(segmented.truncatedBytes, 0u);
}

TEST(JournalFaults, CompactionDropsInteriorProgressCheckpoints)
{
    TempChain path("compact");
    JournalConfig config;
    config.segmentBytes = 64; // rotate after every group
    MeasurementJournal journal(path.str(), testHeader(), config);
    writeSequence(journal);
    EXPECT_GT(journal.segmentsRotated(), 0u);
    // A sealed segment held the interior Progress checkpoint; its
    // frame was reclaimed. The Complete checkpoint is kept.
    EXPECT_GT(journal.compactedBytes(), 0u);

    const JournalRecovery r = core::recoverJournal(path.str());
    ASSERT_TRUE(r.headerValid) << r.error;
    EXPECT_EQ(r.batches.size(), 2u);
    ASSERT_EQ(r.checkpoints.size(), 1u);
    EXPECT_EQ(r.checkpoints[0].kind, CheckpointKind::Complete);
}

TEST(JournalFaults, TornMidChainSegmentDropsSuccessorsAsStale)
{
    TempChain path("torn_chain");
    {
        JournalConfig config;
        config.segmentBytes = 64;
        MeasurementJournal journal(path.str(), testHeader(), config);
        writeSequence(journal);
    }
    const JournalRecovery clean = core::recoverJournal(path.str());
    ASSERT_TRUE(clean.headerValid) << clean.error;
    ASSERT_GE(clean.segmentFiles.size(), 3u);

    // Tear the segment holding the second batch group: everything it
    // committed is dropped, and every LATER segment — written by a
    // writer whose predecessor we now distrust — becomes stale.
    const std::string victim = clean.segmentFiles[2];
    std::filesystem::resize_file(
        victim, std::filesystem::file_size(victim) - 2);

    const JournalRecovery torn = core::recoverJournal(path.str());
    ASSERT_TRUE(torn.headerValid) << torn.error;
    EXPECT_LT(torn.batches.size(), clean.batches.size());
    expectBatchPrefix(torn, clean, "torn chain");
    EXPECT_GT(torn.truncatedBytes, 0u);
    EXPECT_EQ(torn.activeSegment, victim);
    ASSERT_EQ(torn.staleSegments.size(),
              clean.segmentFiles.size() - 3);

    // Resuming deletes the stale tail, truncates the torn segment and
    // appends fresh groups; a second recovery sees a clean chain.
    {
        JournalConfig config;
        config.segmentBytes = 64;
        MeasurementJournal journal(path.str(), torn, config);
        ASSERT_TRUE(journal.recording());
        journal.beginBatch(7, 1);
        journal.appendMeasurement(99, okOutcome(9.0));
        journal.sync();
    }
    for (const std::string &stale : torn.staleSegments)
        EXPECT_FALSE(base::io::fileExists(stale)) << stale;
    const JournalRecovery resumed = core::recoverJournal(path.str());
    ASSERT_TRUE(resumed.headerValid) << resumed.error;
    ASSERT_EQ(resumed.batches.size(), torn.batches.size() + 1);
    EXPECT_EQ(resumed.batches.back().round, 7u);
    EXPECT_EQ(resumed.batches.back().measurements[0].keyHash, 99u);
    EXPECT_EQ(resumed.truncatedBytes, 0u);
    EXPECT_TRUE(resumed.staleSegments.empty());
}

TEST(JournalFaults, ForeignSegmentStopsTheTrustHorizon)
{
    TempChain path("foreign");
    {
        JournalConfig config;
        config.segmentBytes = 64;
        MeasurementJournal journal(path.str(), testHeader(), config);
        writeSequence(journal);
    }
    const JournalRecovery clean = core::recoverJournal(path.str());
    ASSERT_TRUE(clean.headerValid) << clean.error;
    ASSERT_GE(clean.segmentFiles.size(), 3u);

    // Replace a mid-chain segment with one from a DIFFERENT campaign
    // (different seed): its header is valid but foreign, so it and
    // everything after it must not be trusted.
    const std::string victim = clean.segmentFiles[1];
    {
        MeasurementJournal foreign(victim, testHeader(1234));
        foreign.beginBatch(0, 1);
        foreign.appendMeasurement(1, okOutcome(1.0));
        foreign.sync();
    }

    const JournalRecovery r = core::recoverJournal(path.str());
    ASSERT_TRUE(r.headerValid) << r.error;
    expectBatchPrefix(r, clean, "foreign segment");
    EXPECT_EQ(r.activeSegment, clean.segmentFiles[0]);
    EXPECT_EQ(r.staleSegments.size(), clean.segmentFiles.size() - 1);
}

TEST(JournalFaults, FreshSegmentedJournalRemovesAPriorChain)
{
    TempChain path("stale_chain");
    {
        JournalConfig config;
        config.segmentBytes = 64;
        MeasurementJournal journal(path.str(), testHeader(), config);
        writeSequence(journal);
    }
    const JournalRecovery old = core::recoverJournal(path.str());
    ASSERT_GT(old.segmentFiles.size(), 1u);

    // A new campaign at the same path starts a new chain head; stale
    // successors from the previous chain must not survive to be
    // spliced onto the new journal by a later recovery.
    {
        JournalConfig config;
        config.segmentBytes = 1 << 20; // no rotation this time
        MeasurementJournal journal(path.str(), testHeader(99),
                                   config);
        journal.beginBatch(0, 1);
        journal.appendMeasurement(5, okOutcome(5.0));
        journal.sync();
    }
    for (std::size_t i = 1; i < old.segmentFiles.size(); ++i)
        EXPECT_FALSE(base::io::fileExists(old.segmentFiles[i]))
            << old.segmentFiles[i];

    const JournalRecovery fresh = core::recoverJournal(path.str());
    ASSERT_TRUE(fresh.headerValid) << fresh.error;
    EXPECT_TRUE(fresh.header == testHeader(99));
    ASSERT_EQ(fresh.batches.size(), 1u);
    EXPECT_EQ(fresh.batches[0].measurements[0].keyHash, 5u);
}

} // namespace
