/**
 * @file
 * ShardedEngine tests: the bit-identity contract under every failure
 * mode the engine handles — dead shards, hung shards, respawn backoff,
 * quarantine, full degradation — driven deterministically with a
 * ManualClock and in-memory loopback backends that wrap a real
 * ShardWorker over a fresh simulated engine. No processes are spawned;
 * the subprocess transport is covered end to end by the
 * cli_shard_identity ctest and the shard-resume CI job.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/clock.hh"
#include "core/health.hh"
#include "core/sampler.hh"
#include "core/shard_worker.hh"
#include "core/sharded_engine.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::MeasurementOutcome;
using core::ShardBackend;
using core::ShardedEngine;
using core::ShardedOptions;
using core::ShardFrame;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();
constexpr std::uint64_t kConfigHash = 77;

sim::Workload
workload()
{
    return sim::makeWorkload(sim::Benchmark::IpfwdL1, 8);
}

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed)
{
    core::RandomAssignmentSampler sampler(
        t2, workload().taskCount(), seed);
    return sampler.drawSample(n);
}

/** Per-spawn failure script for one loopback backend. */
struct SlotScript
{
    /** start() fails outright (spawn failure). */
    bool failStart = false;
    /** Deliver this many frames, then fall silent (hang); -1 =
     *  unlimited. The Hello is frame one. */
    int deliverFrames = -1;
    /** Byzantine worker: compute honestly, then corrupt the value
     *  bits of every Ok outcome before replying. Frames and CRCs stay
     *  valid — only audit duplication can catch it. */
    bool garbageValues = false;
};

/** Test-local Byzantine decorator, mirroring the worker binary's
 *  --garbage-values mode: valid protocol, wrong value bits. */
class GarbageEngine : public core::PerformanceEngine
{
  public:
    explicit GarbageEngine(core::PerformanceEngine &inner)
        : inner_(inner)
    {
    }

    double
    measure(const Assignment &assignment) override
    {
        return measureOutcome(assignment).valueOrNaN();
    }

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override
    {
        return corrupt(inner_.measureOutcome(assignment));
    }

    void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out) override
    {
        inner_.measureBatchOutcome(batch, out);
        for (MeasurementOutcome &o : out)
            o = corrupt(o);
    }

    core::OutcomeKernel
    outcomeKernel(std::size_t batchSize) override
    {
        core::OutcomeKernel kernel = inner_.outcomeKernel(batchSize);
        if (!kernel)
            return kernel;
        return [kernel](const Assignment &assignment,
                        std::size_t index) {
            return corrupt(kernel(assignment, index));
        };
    }

    void
    reserveMeasurementIndices(std::size_t count) override
    {
        inner_.reserveMeasurementIndices(count);
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(core::EngineStats &stats) const override
    {
        inner_.collectStats(stats);
    }

  private:
    static MeasurementOutcome
    corrupt(MeasurementOutcome outcome)
    {
        if (!outcome.ok())
            return outcome;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &outcome.value, sizeof bits);
        bits ^= 0xffffffULL;
        std::memcpy(&outcome.value, &bits, sizeof bits);
        return outcome;
    }

    core::PerformanceEngine &inner_;
};

/**
 * In-memory ShardBackend: a real ShardWorker over its own fresh
 * simulated engine, so protocol, window alignment and evaluation are
 * the production code paths — only the pipe is replaced by a byte
 * buffer. Timeouts advance the ManualClock by the full wait, which is
 * exactly what a real hung worker costs the coordinator.
 */
class LoopbackBackend : public ShardBackend
{
  public:
    LoopbackBackend(base::ManualClock &clock, SlotScript script)
        : clock_(clock), script_(script)
    {
    }

    bool
    start(std::string &error) override
    {
        if (script_.failStart) {
            error = "scripted spawn failure";
            return false;
        }
        engine_ = std::make_unique<sim::SimulatedEngine>(workload());
        core::PerformanceEngine *engine = engine_.get();
        if (script_.garbageValues) {
            garbage_ = std::make_unique<GarbageEngine>(*engine);
            engine = garbage_.get();
        }
        worker_ = std::make_unique<core::ShardWorker>(
            *engine, t2, workload().taskCount(), kConfigHash);
        const auto hello = worker_->helloBytes();
        parser_.feed(hello.data(), hello.size());
        return true;
    }

    bool
    send(const std::uint8_t *data, std::size_t size) override
    {
        if (dead_ || !worker_)
            return false;
        std::vector<std::uint8_t> response;
        worker_->consume(data, size, response);
        parser_.feed(response.data(), response.size());
        return true;
    }

    RecvStatus
    receive(ShardFrame &frame, double maxWaitSeconds) override
    {
        if (dead_ || !worker_)
            return RecvStatus::Closed;
        if (parser_.corrupt())
            return RecvStatus::Corrupt;
        if (script_.deliverFrames >= 0 && delivered_ >=
            script_.deliverFrames) {
            clock_.advance(maxWaitSeconds); // hang costs real wait
            return RecvStatus::Timeout;
        }
        if (parser_.next(frame)) {
            ++delivered_;
            return RecvStatus::Frame;
        }
        clock_.advance(maxWaitSeconds);
        return RecvStatus::Timeout;
    }

    void terminate() override { dead_ = true; }

  private:
    base::ManualClock &clock_;
    SlotScript script_;
    std::unique_ptr<sim::SimulatedEngine> engine_;
    std::unique_ptr<GarbageEngine> garbage_;
    std::unique_ptr<core::ShardWorker> worker_;
    core::ShardFrameParser parser_;
    int delivered_ = 0;
    bool dead_ = false;
};

/**
 * A scripted fleet of loopback backends plus the clock that drives
 * them. Scripts are per slot and per spawn (the last script of a
 * slot repeats for further respawns).
 */
struct Fleet
{
    base::ManualClock clock;
    std::map<std::size_t, std::vector<SlotScript>> scripts;
    std::vector<std::size_t> spawnLog;

    core::ShardBackendFactory
    factory()
    {
        return [this](std::size_t index) {
            std::size_t nth = 0;
            for (const std::size_t s : spawnLog)
                nth += s == index ? 1 : 0;
            spawnLog.push_back(index);
            SlotScript script;
            const auto it = scripts.find(index);
            if (it != scripts.end() && !it->second.empty())
                script = it->second[std::min(
                    nth, it->second.size() - 1)];
            return std::unique_ptr<ShardBackend>(
                new LoopbackBackend(clock, script));
        };
    }

    ShardedOptions
    options(std::size_t shards)
    {
        ShardedOptions o;
        o.shards = shards;
        o.requestDeadlineSeconds = 5.0;
        // Large heartbeat interval: tests that want per-batch pings
        // lower it explicitly.
        o.heartbeatSeconds = 1000.0;
        o.heartbeatTimeoutSeconds = 2.0;
        o.backoffBaseSeconds = 0.25;
        o.backoffFactor = 2.0;
        o.backoffCapSeconds = 8.0;
        o.quarantineThreshold = 3;
        o.expected.configHash = kConfigHash;
        o.expected.cores = t2.cores;
        o.expected.pipesPerCore = t2.pipesPerCore;
        o.expected.strandsPerPipe = t2.strandsPerPipe;
        o.expected.tasks = workload().taskCount();
        o.clock = &clock;
        return o;
    }
};

/** The campaign's batch sequence; seeds differ so batches do. */
std::vector<std::vector<Assignment>>
batchSequence()
{
    return {drawBatch(5, 11), drawBatch(8, 22), drawBatch(3, 33),
            drawBatch(6, 44)};
}

/** What the unsharded in-process engine produces for the sequence. */
std::vector<std::vector<MeasurementOutcome>>
referenceOutcomes(const std::vector<std::vector<Assignment>> &batches)
{
    sim::SimulatedEngine reference(workload());
    std::vector<std::vector<MeasurementOutcome>> all;
    for (const auto &batch : batches) {
        std::vector<MeasurementOutcome> outcomes(batch.size());
        reference.measureBatchOutcome(batch, outcomes);
        all.push_back(std::move(outcomes));
    }
    return all;
}

void
expectSameOutcomes(const std::vector<MeasurementOutcome> &got,
                   const std::vector<MeasurementOutcome> &want,
                   const std::string &context)
{
    ASSERT_EQ(got.size(), want.size()) << context;
    for (std::size_t i = 0; i < got.size(); ++i) {
        std::uint64_t gbits = 0, wbits = 0;
        std::memcpy(&gbits, &got[i].value, sizeof gbits);
        std::memcpy(&wbits, &want[i].value, sizeof wbits);
        EXPECT_EQ(gbits, wbits)
            << context << ": value bits differ at " << i;
        EXPECT_EQ(got[i].status, want[i].status)
            << context << ": status differs at " << i;
    }
}

TEST(ShardedEngine, BitIdenticalAcrossShardCounts)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    for (const std::size_t shards : {1u, 2u, 4u}) {
        Fleet fleet;
        sim::SimulatedEngine inner(workload());
        ShardedEngine sharded(inner, fleet.factory(),
                              fleet.options(shards));
        for (std::size_t b = 0; b < batches.size(); ++b) {
            std::vector<MeasurementOutcome> out(batches[b].size());
            sharded.measureBatchOutcome(batches[b], out);
            expectSameOutcomes(
                out, expected[b],
                "shards=" + std::to_string(shards) + " batch " +
                    std::to_string(b));
        }
        EXPECT_EQ(sharded.liveShardCount(), shards);

        core::EngineStats stats;
        sharded.collectStats(stats);
        EXPECT_EQ(stats.shardedMeasurements, 22u);
        EXPECT_EQ(stats.shardFailures, 0u);
        EXPECT_EQ(stats.shardDegradedBatches, 0u);
    }
}

TEST(ShardedEngine, SingleMeasureRoutesThroughTheShards)
{
    // measure()/measureOutcome() are one-item batches on the same
    // cursor, so mixing them with batches stays on the reference
    // stream.
    const auto batch = drawBatch(3, 55);
    sim::SimulatedEngine reference(workload());
    std::vector<MeasurementOutcome> want(batch.size());
    reference.measureBatchOutcome(batch, want);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(2));
    std::vector<MeasurementOutcome> got;
    for (const Assignment &a : batch)
        got.push_back(sharded.measureOutcome(a));
    expectSameOutcomes(got, want, "single-measure stream");
    EXPECT_FALSE(static_cast<bool>(sharded.parallelKernel(4)));
    EXPECT_FALSE(static_cast<bool>(sharded.outcomeKernel(4)));
}

TEST(ShardedEngine, ReserveAdvancesTheSharedCursor)
{
    // Journal replay: skip 37 indices, then measure. Workers fast-
    // forward their fresh engines to the window on first request.
    const auto batch = drawBatch(6, 66);
    sim::SimulatedEngine reference(workload());
    reference.reserveMeasurementIndices(37);
    std::vector<MeasurementOutcome> want(batch.size());
    reference.measureBatchOutcome(batch, want);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(2));
    sharded.reserveMeasurementIndices(37);
    std::vector<MeasurementOutcome> got(batch.size());
    sharded.measureBatchOutcome(batch, got);
    expectSameOutcomes(got, want, "post-replay batch");
}

TEST(ShardedEngine, DeadShardReissuesToTheSurvivor)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(2));

    // Batch 0 establishes both workers.
    std::vector<MeasurementOutcome> out(batches[0].size());
    sharded.measureBatchOutcome(batches[0], out);
    expectSameOutcomes(out, expected[0], "before kill");

    // External SIGKILL of shard 1: the transport dies, the slot does
    // not know yet.
    sharded.disruptShard(1);
    out.assign(batches[1].size(), {});
    sharded.measureBatchOutcome(batches[1], out);
    expectSameOutcomes(out, expected[1], "kill mid-batch");

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardFailures, 1u);
    // Shard 1's half of the 8-item batch was re-issued to shard 0.
    EXPECT_EQ(stats.shardReissues, 4u);
    EXPECT_EQ(stats.shardDegradedBatches, 0u);
    EXPECT_EQ(sharded.liveShardCount(), 1u);

    // Later batches keep working on the survivor.
    out.assign(batches[2].size(), {});
    sharded.measureBatchOutcome(batches[2], out);
    expectSameOutcomes(out, expected[2], "after kill");
}

TEST(ShardedEngine, HungShardTripsTheDeadlineAndReissues)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    // Slot 1 delivers its Hello, then never another frame: a worker
    // that wedged after the handshake.
    fleet.scripts[1] = {SlotScript{false, 1}};
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(2));

    const double before = fleet.clock.nowSeconds();
    std::vector<MeasurementOutcome> out(batches[0].size());
    sharded.measureBatchOutcome(batches[0], out);
    expectSameOutcomes(out, expected[0], "hung shard");
    // The hang cost exactly one request deadline of waiting.
    EXPECT_NEAR(fleet.clock.nowSeconds() - before, 5.0, 1e-9);

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardFailures, 1u);
    EXPECT_GT(stats.shardReissues, 0u);
    EXPECT_EQ(stats.shardDegradedBatches, 0u);
}

TEST(ShardedEngine, RespawnWaitsOutTheBackoffGate)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(2));

    std::vector<MeasurementOutcome> out(batches[0].size());
    sharded.measureBatchOutcome(batches[0], out);
    sharded.disruptShard(1);

    // Immediately after the failure the gate is closed: the batch is
    // served by the survivor alone, no respawn attempt.
    out.assign(batches[1].size(), {});
    sharded.measureBatchOutcome(batches[1], out);
    expectSameOutcomes(out, expected[1], "gate closed");
    EXPECT_EQ(sharded.liveShardCount(), 1u);
    const std::size_t spawnsBefore = fleet.spawnLog.size();

    // Past the backoff the slot respawns; the replacement's fresh
    // engine fast-forwards to the live window, so outcomes still
    // match the reference stream.
    fleet.clock.advance(1.0);
    out.assign(batches[2].size(), {});
    sharded.measureBatchOutcome(batches[2], out);
    expectSameOutcomes(out, expected[2], "after respawn");
    EXPECT_EQ(sharded.liveShardCount(), 2u);
    EXPECT_EQ(fleet.spawnLog.size(), spawnsBefore + 1);

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardRespawns, 1u);

    out.assign(batches[3].size(), {});
    sharded.measureBatchOutcome(batches[3], out);
    expectSameOutcomes(out, expected[3], "steady state");
}

TEST(ShardedEngine, HeartbeatCatchesAWorkerThatDiedIdle)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedOptions options = fleet.options(2);
    options.heartbeatSeconds = 0.0; // ping before every batch
    ShardedEngine sharded(inner, fleet.factory(), options);

    std::vector<MeasurementOutcome> out(batches[0].size());
    sharded.measureBatchOutcome(batches[0], out);
    sharded.disruptShard(0);

    out.assign(batches[1].size(), {});
    sharded.measureBatchOutcome(batches[1], out);
    expectSameOutcomes(out, expected[1], "died idle");

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardFailures, 1u);
    // The heartbeat failed BEFORE work was assigned, so nothing was
    // re-issued — the partition simply skipped the dead slot.
    EXPECT_EQ(stats.shardReissues, 0u);
}

TEST(ShardedEngine, RepeatedFailureQuarantinesAndDegrades)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    // The only slot never spawns successfully.
    fleet.scripts[0] = {SlotScript{true, -1}};
    sim::SimulatedEngine inner(workload());
    ShardedEngine sharded(inner, fleet.factory(), fleet.options(1));

    for (std::size_t b = 0; b < batches.size(); ++b) {
        std::vector<MeasurementOutcome> out(batches[b].size());
        sharded.measureBatchOutcome(batches[b], out);
        expectSameOutcomes(out, expected[b],
                           "degraded batch " + std::to_string(b));
        fleet.clock.advance(10.0); // open the respawn gate each time
    }

    // Three spawn failures (quarantineThreshold), then no further
    // attempts: the engine is fully degraded and stays correct.
    EXPECT_TRUE(sharded.fullyDegraded());
    EXPECT_EQ(sharded.quarantinedShardCount(), 1u);
    EXPECT_EQ(fleet.spawnLog.size(), 3u);

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardFailures, 3u);
    EXPECT_EQ(stats.shardsQuarantined, 1u);
    EXPECT_EQ(stats.shardDegradedBatches, batches.size());
    EXPECT_EQ(stats.shardedMeasurements, 0u);
}

TEST(ShardedEngine, PartialBatchDegradationStaysBitIdentical)
{
    // Both shards die mid-batch: the first half was already resolved
    // remotely, the second half must be served in-process — from the
    // same index window.
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    Fleet fleet;
    // Each slot's worker serves the handshake plus one response group
    // for its first partition (1 hello + 1 response header + 3 or 4
    // outcomes), then hangs. Quarantine on the first failure so the
    // engine degrades instead of retrying forever.
    fleet.scripts[0] = {SlotScript{false, 5}};
    fleet.scripts[1] = {SlotScript{false, 6}};
    sim::SimulatedEngine inner(workload());
    ShardedOptions options = fleet.options(2);
    options.quarantineThreshold = 1;
    ShardedEngine sharded(inner, fleet.factory(), options);

    std::vector<MeasurementOutcome> out(batches[0].size());
    sharded.measureBatchOutcome(batches[0], out); // 5 items: 3 + 2
    expectSameOutcomes(out, expected[0], "first batch");

    out.assign(batches[1].size(), {});
    sharded.measureBatchOutcome(batches[1], out);
    expectSameOutcomes(out, expected[1], "partially degraded");

    out.assign(batches[2].size(), {});
    sharded.measureBatchOutcome(batches[2], out);
    expectSameOutcomes(out, expected[2], "fully in-process");
    EXPECT_TRUE(sharded.fullyDegraded());

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_GT(stats.shardDegradedBatches, 0u);
}

/**
 * The chaos acceptance test: SIGKILL one worker at EVERY round
 * boundary of a multi-batch campaign, for every victim, and require
 * the merged outcome stream byte-identical to the in-process run
 * every single time.
 */
TEST(ShardedEngine, KillAtEveryRoundBoundaryStaysBitIdentical)
{
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    for (std::size_t victim = 0; victim < 2; ++victim) {
        for (std::size_t killAt = 0; killAt < batches.size();
             ++killAt) {
            Fleet fleet;
            sim::SimulatedEngine inner(workload());
            ShardedEngine sharded(inner, fleet.factory(),
                                  fleet.options(2));
            const std::string where = "victim=" +
                std::to_string(victim) + " killAt=" +
                std::to_string(killAt);
            for (std::size_t b = 0; b < batches.size(); ++b) {
                std::vector<MeasurementOutcome> out(
                    batches[b].size());
                sharded.measureBatchOutcome(batches[b], out);
                expectSameOutcomes(out, expected[b],
                                   where + " batch " +
                                       std::to_string(b));
                if (b == killAt)
                    sharded.disruptShard(victim);
            }

            core::EngineStats stats;
            sharded.collectStats(stats);
            EXPECT_EQ(stats.shardDegradedBatches, 0u) << where;
            // A kill after the last batch is never probed again, so
            // it is only discovered (and counted) mid-campaign.
            if (killAt + 1 < batches.size()) {
                EXPECT_EQ(stats.shardFailures, 1u) << where;
            }
        }
    }
}

TEST(ShardedEngine, AuditDuplicationHasNoFalsePositives)
{
    // Honest fleet + auditing: duplicates are issued, every duplicate
    // agrees bit-for-bit, nobody is convicted, nothing is re-issued,
    // and the audited index set is a pure function of (seed, index) —
    // identical at any shard count.
    const auto batches = batchSequence();
    const auto expected = referenceOutcomes(batches);

    std::uint64_t auditsAtTwoShards = 0;
    for (const std::size_t shards : {2u, 4u}) {
        Fleet fleet;
        sim::SimulatedEngine inner(workload());
        ShardedOptions options = fleet.options(shards);
        options.auditFraction = 0.5;
        options.auditSeed = 42;
        ShardedEngine sharded(inner, fleet.factory(), options);
        for (std::size_t b = 0; b < batches.size(); ++b) {
            std::vector<MeasurementOutcome> out(batches[b].size());
            sharded.measureBatchOutcome(batches[b], out);
            expectSameOutcomes(out, expected[b],
                               "audited honest shards=" +
                                   std::to_string(shards));
        }

        core::EngineStats stats;
        sharded.collectStats(stats);
        EXPECT_GT(stats.shardAudits, 0u);
        EXPECT_EQ(stats.shardAuditMismatches, 0u);
        EXPECT_EQ(stats.shardConvictions, 0u);
        EXPECT_EQ(stats.shardReissues, 0u);
        if (shards == 2u)
            auditsAtTwoShards = stats.shardAudits;
        else
            EXPECT_EQ(stats.shardAudits, auditsAtTwoShards);
    }
}

TEST(ShardedEngine, AuditConvictsAGarbageShardBitIdentically)
{
    // Slot 1 is Byzantine on every spawn: honest protocol, corrupted
    // value bits. Half the indices carry audit duplicates, so the
    // first batch it touches convicts it; its unaudited results are
    // discarded and re-measured, and the merged stream never differs
    // from the in-process reference. Repeated convictions climb the
    // quarantine ladder even though every protocol exchange succeeds.
    std::vector<std::vector<Assignment>> batches;
    for (std::uint64_t i = 0; i < 6; ++i)
        batches.push_back(drawBatch(6, 100 + i));
    const auto expected = referenceOutcomes(batches);

    std::vector<core::HealthTransition> transitions;
    core::Health health([&transitions](
                            const core::HealthTransition &t) {
        transitions.push_back(t);
    });

    Fleet fleet;
    fleet.scripts[1] = {SlotScript{false, -1, true}};
    sim::SimulatedEngine inner(workload());
    ShardedOptions options = fleet.options(2);
    options.auditFraction = 0.5;
    options.auditSeed = 7;
    options.health = &health;
    ShardedEngine sharded(inner, fleet.factory(), options);

    for (std::size_t b = 0; b < batches.size(); ++b) {
        std::vector<MeasurementOutcome> out(batches[b].size());
        sharded.measureBatchOutcome(batches[b], out);
        expectSameOutcomes(out, expected[b],
                           "garbage shard batch " +
                               std::to_string(b));
        fleet.clock.advance(10.0); // open the respawn gate each round
    }

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_GT(stats.shardAudits, 0u);
    EXPECT_GT(stats.shardAuditMismatches, 0u);
    // Three convictions (one per respawn) reach the quarantine
    // threshold; after that the offender is never spawned again.
    EXPECT_GE(stats.shardConvictions, 3u);
    EXPECT_EQ(stats.shardsQuarantined, 1u);
    EXPECT_GT(stats.shardReissues, 0u);
    EXPECT_EQ(sharded.quarantinedShardCount(), 1u);
    EXPECT_EQ(sharded.liveShardCount(), 1u);

    // The first conviction degraded shard health immediately — not
    // only at quarantine — and it stays degraded.
    ASSERT_FALSE(transitions.empty());
    EXPECT_EQ(transitions[0].component, "shards");
    EXPECT_EQ(transitions[0].to, core::HealthLevel::Degraded);
    EXPECT_NE(transitions[0].detail.find("convicted"),
              std::string::npos);
    EXPECT_EQ(health.level("shards"), core::HealthLevel::Degraded);
}

TEST(ShardedEngine, AuditNeedsASecondLiveSlot)
{
    // One live slot has nobody to disagree with: auditing is skipped
    // (a duplicate on the same backend adds no information), and the
    // campaign proceeds normally.
    const auto batch = drawBatch(5, 99);
    sim::SimulatedEngine reference(workload());
    std::vector<MeasurementOutcome> want(batch.size());
    reference.measureBatchOutcome(batch, want);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedOptions options = fleet.options(1);
    options.auditFraction = 1.0;
    options.auditSeed = 7;
    ShardedEngine sharded(inner, fleet.factory(), options);
    std::vector<MeasurementOutcome> got(batch.size());
    sharded.measureBatchOutcome(batch, got);
    expectSameOutcomes(got, want, "single-slot campaign");

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardAudits, 0u);
    EXPECT_EQ(stats.shardConvictions, 0u);
}

TEST(ShardedEngine, RejectsAMisconfiguredWorkerAtHandshake)
{
    // A worker whose engine configuration fingerprint differs must
    // never serve a measurement: its values would silently diverge.
    const auto batch = drawBatch(4, 88);
    sim::SimulatedEngine reference(workload());
    std::vector<MeasurementOutcome> want(batch.size());
    reference.measureBatchOutcome(batch, want);

    Fleet fleet;
    sim::SimulatedEngine inner(workload());
    ShardedOptions options = fleet.options(1);
    options.expected.configHash = kConfigHash + 1; // mismatch
    options.quarantineThreshold = 1;
    ShardedEngine sharded(inner, fleet.factory(), options);

    std::vector<MeasurementOutcome> got(batch.size());
    sharded.measureBatchOutcome(batch, got);
    expectSameOutcomes(got, want, "handshake-rejected worker");

    core::EngineStats stats;
    sharded.collectStats(stats);
    EXPECT_EQ(stats.shardedMeasurements, 0u);
    EXPECT_EQ(stats.shardFailures, 1u);
    EXPECT_TRUE(sharded.fullyDegraded());
}

} // anonymous namespace
