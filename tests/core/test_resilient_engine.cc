/**
 * @file
 * ResilientEngine tests: retry recovery, backoff pricing, quarantine,
 * median-of-k screening — plus the acceptance scenario of the
 * fault-tolerant layer: the iterative algorithm over a 20%-faulty
 * engine completes and agrees with the fault-free run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/check.hh"
#include "core/estimator.hh"
#include "core/fault_injection.hh"
#include "core/iterative.hh"
#include "core/parallel_engine.hh"
#include "core/resilient_engine.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::MeasurementOutcome;
using core::MeasureStatus;
using core::ResilientEngine;
using core::ResilientOptions;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed = 47)
{
    core::RandomAssignmentSampler sampler(t2, 24, seed);
    return sampler.drawSample(n);
}

/**
 * Fails the first `failuresPerKey` attempts of every assignment
 * class, then returns 100. Counts every attempt.
 */
class FlakyEngine : public core::PerformanceEngine
{
  public:
    explicit FlakyEngine(std::uint32_t failuresPerKey)
        : failuresPerKey_(failuresPerKey)
    {
    }

    double
    measure(const Assignment &assignment) override
    {
        return measureOutcome(assignment).valueOrNaN();
    }

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override
    {
        ++attempts_;
        if (seen_[assignment.canonicalKey()]++ < failuresPerKey_)
            return MeasurementOutcome::failure(MeasureStatus::Errored);
        return MeasurementOutcome::classify(100.0);
    }

    void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out) override
    {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = measureOutcome(batch[i]);
    }

    std::string name() const override { return "flaky"; }
    double secondsPerMeasurement() const override { return 0.0; }

    std::uint64_t attempts() const { return attempts_; }

  private:
    std::uint32_t failuresPerKey_;
    std::unordered_map<std::string, std::uint32_t> seen_;
    std::uint64_t attempts_ = 0;
};

/** Returns scripted values in order; repeats the last one forever. */
class ScriptedEngine : public core::PerformanceEngine
{
  public:
    explicit ScriptedEngine(std::vector<double> values)
        : values_(std::move(values))
    {
    }

    double
    measure(const Assignment &) override
    {
        const double v = values_[std::min(next_, values_.size() - 1)];
        ++next_;
        return v;
    }

    std::string name() const override { return "scripted"; }

  private:
    std::vector<double> values_;
    std::size_t next_ = 0;
};

TEST(ResilientEngine, RetriesRecoverTransientFailures)
{
    FlakyEngine flaky(2);
    ResilientOptions options;
    options.maxAttempts = 4;
    ResilientEngine resilient(flaky, options);

    const auto batch = drawBatch(8);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes) {
        EXPECT_TRUE(outcome.ok());
        EXPECT_EQ(outcome.value, 100.0);
        EXPECT_EQ(outcome.attempts, 3u);
    }
    // Two failed rounds of 8 before the third succeeds.
    EXPECT_EQ(resilient.retryCount(), 16u);
    EXPECT_EQ(resilient.quarantineSize(), 0u);
    EXPECT_EQ(flaky.attempts(), 24u);
}

TEST(ResilientEngine, BackoffIsPricedIntoModeledSeconds)
{
    FlakyEngine flaky(2);
    ResilientOptions options;
    options.maxAttempts = 4;
    options.backoffBaseSeconds = 0.5;
    options.backoffFactor = 2.0;
    ResilientEngine resilient(flaky, options);

    const auto batch = drawBatch(8);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);

    core::EngineStats stats;
    resilient.collectStats(stats);
    EXPECT_EQ(stats.retries, 16u);
    // Round 1 waits 0.5 s per failed item, round 2 waits 1.0 s; the
    // flaky engine itself is instantaneous.
    EXPECT_NEAR(stats.modeledSeconds, 8 * 0.5 + 8 * 1.0, 1e-12);
}

TEST(ResilientEngine, QuarantinedClassesAreNeverRemeasured)
{
    // More faults per key than the retry budget: the class exhausts
    // its attempts and must be quarantined.
    FlakyEngine flaky(1000);
    ResilientOptions options;
    options.maxAttempts = 2;
    options.quarantineAfter = 1;
    ResilientEngine resilient(flaky, options);

    const auto a = drawBatch(1)[0];
    const MeasurementOutcome first = resilient.measureOutcome(a);
    EXPECT_EQ(first.status, MeasureStatus::Errored);
    EXPECT_EQ(first.attempts, 2u);
    EXPECT_TRUE(resilient.isQuarantined(a));
    EXPECT_EQ(resilient.quarantineSize(), 1u);
    const std::uint64_t attempts_after_first = flaky.attempts();
    EXPECT_EQ(attempts_after_first, 2u);

    // Further requests are rejected without touching the inner
    // engine — alone and inside a mixed batch.
    const MeasurementOutcome second = resilient.measureOutcome(a);
    EXPECT_EQ(second.status, MeasureStatus::Quarantined);
    EXPECT_EQ(flaky.attempts(), attempts_after_first);

    auto batch = drawBatch(4, 99);
    batch.push_back(a);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);
    EXPECT_EQ(outcomes.back().status, MeasureStatus::Quarantined);
    // The four fresh classes exhausted their attempts in this batch
    // and joined the quarantine; the old one was not re-attempted.
    EXPECT_EQ(flaky.attempts(), attempts_after_first + 4 * 2);

    core::EngineStats stats;
    resilient.collectStats(stats);
    EXPECT_EQ(stats.quarantined, 5u);
}

TEST(ResilientEngine, MedianOfKScreeningRepairsSilentOutliers)
{
    // Batch readings 100,100,100,300,100; the 300 is a silent
    // outlier. With screenWidth 3 it is re-measured twice (100, 100)
    // and the median of {300, 100, 100} replaces it.
    ScriptedEngine scripted({100, 100, 100, 300, 100, 100, 100});
    ResilientOptions options;
    options.screenWidth = 3;
    options.screenRelDeviation = 0.5;
    ResilientEngine resilient(scripted, options);

    const auto batch = drawBatch(5);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok());
        EXPECT_EQ(outcomes[i].value, 100.0) << "index " << i;
    }
    EXPECT_EQ(outcomes[3].attempts, 3u);
    EXPECT_EQ(resilient.screenedCount(), 1u);
    EXPECT_EQ(resilient.retryCount(), 2u);
}

TEST(ResilientEngine, BackoffStaysFiniteAtHighAttemptCounts)
{
    // An uncapped geometric series overflows to infinity near
    // attempt 1000 and poisons the modeled-time accounting; the cap
    // bounds every wait.
    FlakyEngine dead(std::numeric_limits<std::uint32_t>::max());
    ResilientOptions options;
    options.maxAttempts = 2000;
    options.backoffBaseSeconds = 0.5;
    options.backoffFactor = 2.0;
    options.backoffCapSeconds = 4.0;
    ResilientEngine resilient(dead, options);

    const auto a = drawBatch(1)[0];
    const MeasurementOutcome outcome = resilient.measureOutcome(a);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.attempts, 2000u);

    core::EngineStats stats;
    resilient.collectStats(stats);
    EXPECT_TRUE(std::isfinite(stats.modeledSeconds));
    // Waits: 0.5, 1, 2, then 4 for each of the remaining 1996
    // retried rounds (1999 retries total, the last attempt is not
    // followed by a wait).
    EXPECT_NEAR(stats.modeledSeconds, 0.5 + 1.0 + 2.0 + 1996 * 4.0,
                1e-9);
}

TEST(ResilientEngine, RejectsDegenerateOptions)
{
    FlakyEngine flaky(0);
    {
        ResilientOptions options;
        options.maxAttempts = 0; // zero attempts can measure nothing
        EXPECT_THROW(ResilientEngine r(flaky, options),
                     ContractViolation);
    }
    {
        ResilientOptions options;
        options.quarantineAfter = 0; // would quarantine everything
        EXPECT_THROW(ResilientEngine r(flaky, options),
                     ContractViolation);
    }
    {
        ResilientOptions options;
        options.backoffCapSeconds = 0.1;
        options.backoffBaseSeconds = 0.5; // cap below base
        EXPECT_THROW(ResilientEngine r(flaky, options),
                     ContractViolation);
    }
}

TEST(ResilientEngine, SingleAttemptBudgetNeverRetries)
{
    FlakyEngine flaky(1000);
    ResilientOptions options;
    options.maxAttempts = 1;
    options.quarantineAfter = 2;
    ResilientEngine resilient(flaky, options);

    const auto batch = drawBatch(4);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes) {
        EXPECT_FALSE(outcome.ok());
        EXPECT_EQ(outcome.attempts, 1u);
    }
    EXPECT_EQ(resilient.retryCount(), 0u);
    EXPECT_EQ(flaky.attempts(), batch.size());

    // The second exhaustion of each class reaches quarantineAfter.
    resilient.measureBatchOutcome(batch, outcomes);
    EXPECT_EQ(resilient.quarantineSize(), batch.size());
}

TEST(ResilientEngine, ImmediateQuarantineInteractsWithBatchReissue)
{
    // quarantineAfter = 1 plus a batch holding the same doomed class
    // twice: both items exhaust in the SAME batch, which must count
    // as exhaustions (not re-measurements of a quarantined class)
    // and quarantine the class exactly once.
    FlakyEngine flaky(1000);
    ResilientOptions options;
    options.maxAttempts = 2;
    options.quarantineAfter = 1;
    ResilientEngine resilient(flaky, options);

    const auto a = drawBatch(1)[0];
    std::vector<core::Assignment> batch{a, a};
    std::vector<MeasurementOutcome> outcomes(batch.size());
    resilient.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes)
        EXPECT_EQ(outcome.status, MeasureStatus::Errored);
    EXPECT_TRUE(resilient.isQuarantined(a));
    EXPECT_EQ(resilient.quarantineSize(), 1u);
    const std::uint64_t attempts = flaky.attempts();
    EXPECT_EQ(attempts, 4u); // 2 items x 2 attempts, then quarantine

    // The follow-up batch is rejected without touching the engine.
    resilient.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes)
        EXPECT_EQ(outcome.status, MeasureStatus::Quarantined);
    EXPECT_EQ(flaky.attempts(), attempts);

    core::EngineStats stats;
    resilient.collectStats(stats);
    EXPECT_EQ(stats.quarantined, 1u);
}

/** The sanctioned simulated stack with fault injection. */
struct FaultyStack
{
    sim::SimulatedEngine sim;
    core::FaultInjectingEngine faulty;
    core::ParallelEngine parallel;
    ResilientEngine resilient;

    FaultyStack(const core::FaultOptions &faults, unsigned threads,
                const ResilientOptions &resilience)
        : sim(sim::makeWorkload(sim::Benchmark::IpfwdL1, 8)),
          faulty(sim, faults), parallel(faulty, threads),
          resilient(parallel, resilience)
    {
    }
};

TEST(ResilientEngine, IterativeUnderFaultsAgreesWithFaultFree)
{
    core::IterativeOptions options;
    options.initialSample = 400;
    options.incrementSample = 100;
    options.acceptableLoss = 0.02;
    options.maxSample = 3000;

    sim::SimulatedEngine clean_sim(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::ParallelEngine clean(clean_sim, 4);
    const auto fault_free =
        core::iterativeAssignmentSearch(clean, t2, 24, 5, options);

    core::FaultOptions faults;
    faults.transientRate = 0.20;
    ResilientOptions resilience;
    resilience.maxAttempts = 4;
    FaultyStack stack(faults, 4, resilience);
    const auto faulty = core::iterativeAssignmentSearch(
        stack.resilient, t2, 24, 5, options);

    // The faulty run completes, reaches the same verdict, and its
    // UPB lands inside the fault-free confidence interval.
    EXPECT_TRUE(faulty.abortReason.empty());
    EXPECT_EQ(fault_free.satisfied, faulty.satisfied);
    // The injected faults really fired; retries recovered (nearly)
    // all of them, so few if any measurements failed outright.
    EXPECT_GT(stack.faulty.injectedTransients(), 0u);
    EXPECT_GT(stack.resilient.retryCount(), 0u);
    EXPECT_EQ(faulty.totalAttempted,
              faulty.totalSampled + faulty.totalFailed);
    ASSERT_TRUE(fault_free.final.pot.valid);
    ASSERT_TRUE(faulty.final.pot.valid);
    EXPECT_GE(faulty.final.pot.upb, fault_free.final.pot.upbLower);
    EXPECT_LE(faulty.final.pot.upb, fault_free.final.pot.upbUpper);

    // Failures were excluded, and every round topped back up: the
    // valid sample still grows in full Ninit/Ndelta quotas.
    EXPECT_EQ(faulty.totalSampled, faulty.final.sample.size());
    for (const auto &step : faulty.steps)
        EXPECT_GE(step.attempted, step.failed);
}

TEST(ResilientEngine, IterativeAbortsWhenEveryMeasurementFails)
{
    FlakyEngine dead(std::numeric_limits<std::uint32_t>::max());
    ResilientOptions resilience;
    resilience.maxAttempts = 2;
    ResilientEngine resilient(dead, resilience);

    core::IterativeOptions options;
    options.initialSample = 50;
    options.incrementSample = 10;
    options.maxSample = 500;

    const auto run = core::iterativeAssignmentSearch(
        resilient, t2, 24, 5, options);
    EXPECT_FALSE(run.satisfied);
    EXPECT_FALSE(run.abortReason.empty());
    EXPECT_EQ(run.totalSampled, 0u);
    EXPECT_GT(run.totalFailed, 0u);
    EXPECT_FALSE(run.final.pot.valid);
    EXPECT_EQ(run.final.pot.invalidReason, "no valid measurements");
}

} // anonymous namespace
