/**
 * @file
 * Shard wire-protocol tests: frame round-trips over arbitrarily
 * chunked streams, CRC corruption latching, decode shape checks, and
 * the ShardWorker protocol servant — window alignment (reuse,
 * fast-forward, backwards rejection), bit-identical evaluation, and
 * clean shutdown — all in memory, without spawning a process.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/sampler.hh"
#include "core/shard_protocol.hh"
#include "core/shard_worker.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::MeasurementOutcome;
using core::ShardEvalItem;
using core::ShardEvalOutcome;
using core::ShardEvalRequest;
using core::ShardEvalResponse;
using core::ShardFrame;
using core::ShardFrameParser;
using core::ShardHello;
using core::ShardMsg;
using core::ShardWorker;
using core::Topology;
using core::appendEvalResponse;
using core::appendPing;
using core::appendPong;
using core::appendShutdown;
using core::appendWorkerError;

const Topology t2 = Topology::ultraSparcT2();

sim::Workload
workload()
{
    return sim::makeWorkload(sim::Benchmark::IpfwdL1, 8);
}

std::vector<core::Assignment>
drawBatch(std::size_t n, std::uint64_t seed = 7)
{
    core::RandomAssignmentSampler sampler(
        t2, workload().taskCount(), seed);
    return sampler.drawSample(n);
}

/** Drains every complete frame currently buffered. */
std::vector<ShardFrame>
drainFrames(ShardFrameParser &parser)
{
    std::vector<ShardFrame> frames;
    ShardFrame frame;
    while (parser.next(frame))
        frames.push_back(frame);
    return frames;
}

TEST(ShardProtocol, HelloRoundTrip)
{
    ShardHello hello;
    hello.configHash = 0xdeadbeefcafef00dULL;
    hello.cores = 8;
    hello.pipesPerCore = 2;
    hello.strandsPerPipe = 4;
    hello.tasks = 24;

    std::vector<std::uint8_t> bytes;
    appendHello(bytes, hello);

    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    ShardFrame frame;
    ASSERT_TRUE(parser.next(frame));
    EXPECT_EQ(frame.type, static_cast<std::uint8_t>(ShardMsg::Hello));

    ShardHello decoded;
    ASSERT_TRUE(decodeHello(frame, decoded));
    EXPECT_EQ(decoded.version, core::kShardProtocolVersion);
    EXPECT_EQ(decoded.configHash, hello.configHash);
    EXPECT_EQ(decoded.cores, hello.cores);
    EXPECT_EQ(decoded.pipesPerCore, hello.pipesPerCore);
    EXPECT_EQ(decoded.strandsPerPipe, hello.strandsPerPipe);
    EXPECT_EQ(decoded.tasks, hello.tasks);
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(ShardProtocol, EvalGroupRoundTrip)
{
    ShardEvalRequest request;
    request.reqId = 42;
    request.cursorBase = (1ULL << 40) + 17; // u64 survives the wire
    request.batchSize = 300;
    request.itemCount = 2;

    ShardEvalItem item;
    item.localIndex = 7;
    item.contexts = {0, 3, 9, 63, 17};

    std::vector<std::uint8_t> bytes;
    appendEvalRequest(bytes, request);
    appendEvalItem(bytes, item);

    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    const auto frames = drainFrames(parser);
    ASSERT_EQ(frames.size(), 2u);

    ShardEvalRequest req2;
    ASSERT_TRUE(decodeEvalRequest(frames[0], req2));
    EXPECT_EQ(req2.reqId, request.reqId);
    EXPECT_EQ(req2.cursorBase, request.cursorBase);
    EXPECT_EQ(req2.batchSize, request.batchSize);
    EXPECT_EQ(req2.itemCount, request.itemCount);

    ShardEvalItem item2;
    ASSERT_TRUE(decodeEvalItem(frames[1], item2));
    EXPECT_EQ(item2.localIndex, item.localIndex);
    EXPECT_EQ(item2.contexts, item.contexts);
}

TEST(ShardProtocol, OutcomeRoundTripPreservesValueBits)
{
    // The outcome value crosses the wire as raw IEEE-754 bits; any
    // decimal round-trip would break the bit-identity contract.
    ShardEvalOutcome outcome;
    outcome.localIndex = 3;
    outcome.outcome.value = 0.1 + 0.2; // not exactly 0.3
    outcome.outcome.status = core::MeasureStatus::TimedOut;
    outcome.outcome.attempts = 5;

    std::vector<std::uint8_t> bytes;
    appendEvalResponse(bytes, {9, 1});
    appendEvalOutcome(bytes, outcome);

    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    const auto frames = drainFrames(parser);
    ASSERT_EQ(frames.size(), 2u);

    ShardEvalResponse response;
    ASSERT_TRUE(decodeEvalResponse(frames[0], response));
    EXPECT_EQ(response.reqId, 9u);
    EXPECT_EQ(response.itemCount, 1u);

    ShardEvalOutcome decoded;
    ASSERT_TRUE(decodeEvalOutcome(frames[1], decoded));
    EXPECT_EQ(decoded.localIndex, 3u);
    std::uint64_t sent = 0, got = 0;
    std::memcpy(&sent, &outcome.outcome.value, sizeof sent);
    std::memcpy(&got, &decoded.outcome.value, sizeof got);
    EXPECT_EQ(sent, got);
    EXPECT_EQ(decoded.outcome.status, core::MeasureStatus::TimedOut);
    EXPECT_EQ(decoded.outcome.attempts, 5u);
}

TEST(ShardProtocol, ControlFramesRoundTrip)
{
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 123);
    appendPong(bytes, 123);
    appendShutdown(bytes);
    appendWorkerError(bytes, "window moved backwards");

    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    const auto frames = drainFrames(parser);
    ASSERT_EQ(frames.size(), 4u);

    std::uint32_t nonce = 0;
    EXPECT_EQ(frames[0].type,
              static_cast<std::uint8_t>(ShardMsg::Ping));
    ASSERT_TRUE(decodePingPong(frames[0], nonce));
    EXPECT_EQ(nonce, 123u);
    EXPECT_EQ(frames[1].type,
              static_cast<std::uint8_t>(ShardMsg::Pong));
    EXPECT_EQ(frames[2].type,
              static_cast<std::uint8_t>(ShardMsg::Shutdown));
    EXPECT_TRUE(frames[2].payload.empty());
    std::string detail;
    ASSERT_TRUE(decodeWorkerError(frames[3], detail));
    EXPECT_EQ(detail, "window moved backwards");
}

TEST(ShardProtocol, ByteAtATimeFeedYieldsSameFrames)
{
    // Pipes deliver arbitrary chunk sizes; the parser must reassemble
    // frames across any fragmentation, worst case one byte at a time.
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 0xa5a5a5a5u);
    appendWorkerError(bytes, "x");

    ShardFrameParser parser;
    std::vector<ShardFrame> frames;
    for (const std::uint8_t b : bytes) {
        parser.feed(&b, 1);
        ShardFrame frame;
        while (parser.next(frame))
            frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 2u);
    std::uint32_t nonce = 0;
    ASSERT_TRUE(decodePingPong(frames[0], nonce));
    EXPECT_EQ(nonce, 0xa5a5a5a5u);
}

TEST(ShardProtocol, CrcCorruptionLatchesTheParser)
{
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 7);
    bytes[4] ^= 0x01; // flip one payload bit

    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    ShardFrame frame;
    EXPECT_FALSE(parser.next(frame));
    EXPECT_TRUE(parser.corrupt());

    // A valid frame after the torn one must NOT resynchronize: the
    // stream is untrustworthy once any CRC failed.
    std::vector<std::uint8_t> good;
    appendPing(good, 8);
    parser.feed(good.data(), good.size());
    EXPECT_FALSE(parser.next(frame));
    EXPECT_TRUE(parser.corrupt());
}

TEST(ShardProtocol, DecodeRejectsWrongTypeAndShape)
{
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 7);
    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    ShardFrame frame;
    ASSERT_TRUE(parser.next(frame));

    ShardHello hello;
    EXPECT_FALSE(decodeHello(frame, hello));
    ShardEvalRequest request;
    EXPECT_FALSE(decodeEvalRequest(frame, request));

    // Truncated payload of the right type.
    frame.type = static_cast<std::uint8_t>(ShardMsg::Hello);
    frame.payload.resize(3);
    EXPECT_FALSE(decodeHello(frame, hello));
}

TEST(ShardProtocol, ConfigFingerprintSeparatesConfigs)
{
    const std::uint64_t a =
        core::shardConfigFingerprint("aho|8|5|0|0|0|1");
    const std::uint64_t b =
        core::shardConfigFingerprint("aho|8|5|0|0|0|2");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, core::shardConfigFingerprint("aho|8|5|0|0|0|1"));
    EXPECT_NE(core::shardConfigFingerprint(""), 0u);
}

// --- ShardWorker ------------------------------------------------

/** Worker over a fresh simulated engine, plus the plumbing to talk
 *  to it from a test. */
struct WorkerHarness
{
    sim::SimulatedEngine engine{workload()};
    ShardWorker worker{engine, t2, workload().taskCount(), 77};
    ShardFrameParser fromWorker;

    /** Feeds coordinator bytes, collects response frames. */
    bool
    roundTrip(const std::vector<std::uint8_t> &bytes,
              std::vector<ShardFrame> &frames)
    {
        std::vector<std::uint8_t> out;
        const bool serving =
            worker.consume(bytes.data(), bytes.size(), out);
        fromWorker.feed(out.data(), out.size());
        frames = drainFrames(fromWorker);
        return serving;
    }

    /** Sends one request group for `indices` of the given window. */
    std::vector<std::uint8_t>
    requestBytes(std::uint32_t reqId, std::uint64_t cursorBase,
                 std::uint32_t batchSize,
                 const std::vector<std::size_t> &indices,
                 const std::vector<core::Assignment> &batch)
    {
        std::vector<std::uint8_t> bytes;
        ShardEvalRequest request;
        request.reqId = reqId;
        request.cursorBase = cursorBase;
        request.batchSize = batchSize;
        request.itemCount =
            static_cast<std::uint32_t>(indices.size());
        appendEvalRequest(bytes, request);
        for (const std::size_t idx : indices) {
            ShardEvalItem item;
            item.localIndex = static_cast<std::uint32_t>(idx);
            item.contexts = batch[idx].contexts();
            appendEvalItem(bytes, item);
        }
        return bytes;
    }
};

/** Outcomes the coordinator-side (unsharded) engine would produce
 *  for window position `i`, after reserving `skip` indices. */
std::vector<MeasurementOutcome>
referenceOutcomes(const std::vector<core::Assignment> &batch,
                  std::size_t skip = 0)
{
    sim::SimulatedEngine reference(workload());
    reference.reserveMeasurementIndices(skip);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    reference.measureBatchOutcome(batch, outcomes);
    return outcomes;
}

void
expectSameOutcome(const MeasurementOutcome &a,
                  const MeasurementOutcome &b, std::size_t i)
{
    std::uint64_t abits = 0, bbits = 0;
    std::memcpy(&abits, &a.value, sizeof abits);
    std::memcpy(&bbits, &b.value, sizeof bbits);
    EXPECT_EQ(abits, bbits) << "value bits differ at " << i;
    EXPECT_EQ(a.status, b.status) << "status differs at " << i;
}

TEST(ShardWorker, HelloDescribesEngineAndConfig)
{
    WorkerHarness h;
    const auto bytes = h.worker.helloBytes();
    ShardFrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    ShardFrame frame;
    ASSERT_TRUE(parser.next(frame));
    ShardHello hello;
    ASSERT_TRUE(decodeHello(frame, hello));
    EXPECT_EQ(hello.version, core::kShardProtocolVersion);
    EXPECT_EQ(hello.configHash, 77u);
    EXPECT_EQ(hello.cores, t2.cores);
    EXPECT_EQ(hello.pipesPerCore, t2.pipesPerCore);
    EXPECT_EQ(hello.strandsPerPipe, t2.strandsPerPipe);
    EXPECT_EQ(hello.tasks, workload().taskCount());
}

TEST(ShardWorker, EvaluatesWindowBitIdentically)
{
    WorkerHarness h;
    const auto batch = drawBatch(6);
    const auto expected = referenceOutcomes(batch);

    std::vector<std::size_t> all(batch.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    std::vector<ShardFrame> frames;
    ASSERT_TRUE(h.roundTrip(
        h.requestBytes(1, 0, 6, all, batch), frames));
    ASSERT_EQ(frames.size(), 1u + batch.size());

    ShardEvalResponse response;
    ASSERT_TRUE(decodeEvalResponse(frames[0], response));
    EXPECT_EQ(response.reqId, 1u);
    EXPECT_EQ(response.itemCount, batch.size());
    for (std::size_t i = 1; i < frames.size(); ++i) {
        ShardEvalOutcome outcome;
        ASSERT_TRUE(decodeEvalOutcome(frames[i], outcome));
        expectSameOutcome(outcome.outcome,
                          expected[outcome.localIndex],
                          outcome.localIndex);
    }
    EXPECT_EQ(h.worker.servedRequests(), 1u);
    EXPECT_EQ(h.worker.consumedIndices(), 6u);
}

TEST(ShardWorker, ReissueReusesTheOpenWindow)
{
    // Two requests against the SAME (cursorBase, batchSize) window —
    // the second is what survivors receive when a sibling shard dies
    // mid-batch. Both must serve from the same reserved kernel.
    WorkerHarness h;
    const auto batch = drawBatch(6);
    const auto expected = referenceOutcomes(batch);

    std::vector<ShardFrame> frames;
    ASSERT_TRUE(h.roundTrip(
        h.requestBytes(1, 0, 6, {0, 1, 2}, batch), frames));
    ASSERT_TRUE(h.roundTrip(
        h.requestBytes(2, 0, 6, {3, 4, 5}, batch), frames));
    ASSERT_EQ(frames.size(), 4u);
    for (std::size_t i = 1; i < frames.size(); ++i) {
        ShardEvalOutcome outcome;
        ASSERT_TRUE(decodeEvalOutcome(frames[i], outcome));
        expectSameOutcome(outcome.outcome,
                          expected[outcome.localIndex],
                          outcome.localIndex);
    }
    // Re-serving the open window reserved nothing new.
    EXPECT_EQ(h.worker.consumedIndices(), 6u);
}

TEST(ShardWorker, FastForwardsToALaterWindow)
{
    // A replacement worker joins mid-campaign: its first request
    // names a window far ahead of its fresh engine, which must
    // fast-forward so the outcomes match the original stream.
    WorkerHarness h;
    const auto batch = drawBatch(4);
    const auto expected = referenceOutcomes(batch, 100);

    std::vector<std::size_t> all{0, 1, 2, 3};
    std::vector<ShardFrame> frames;
    ASSERT_TRUE(h.roundTrip(
        h.requestBytes(1, 100, 4, all, batch), frames));
    ASSERT_EQ(frames.size(), 5u);
    for (std::size_t i = 1; i < frames.size(); ++i) {
        ShardEvalOutcome outcome;
        ASSERT_TRUE(decodeEvalOutcome(frames[i], outcome));
        expectSameOutcome(outcome.outcome,
                          expected[outcome.localIndex],
                          outcome.localIndex);
    }
    EXPECT_EQ(h.worker.consumedIndices(), 104u);
}

TEST(ShardWorker, BackwardsWindowIsAProtocolError)
{
    WorkerHarness h;
    const auto batch = drawBatch(2);
    std::vector<ShardFrame> frames;
    ASSERT_TRUE(h.roundTrip(
        h.requestBytes(1, 100, 2, {0, 1}, batch), frames));

    // The per-index streams only move forward.
    EXPECT_FALSE(h.roundTrip(
        h.requestBytes(2, 50, 2, {0, 1}, batch), frames));
    EXPECT_TRUE(h.worker.protocolError());
    EXPECT_FALSE(h.worker.errorDetail().empty());
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type,
              static_cast<std::uint8_t>(ShardMsg::WorkerError));
}

TEST(ShardWorker, PingPongAndShutdown)
{
    WorkerHarness h;
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 31337);
    std::vector<ShardFrame> frames;
    ASSERT_TRUE(h.roundTrip(bytes, frames));
    ASSERT_EQ(frames.size(), 1u);
    std::uint32_t nonce = 0;
    ASSERT_TRUE(decodePingPong(frames[0], nonce));
    EXPECT_EQ(frames[0].type,
              static_cast<std::uint8_t>(ShardMsg::Pong));
    EXPECT_EQ(nonce, 31337u);

    bytes.clear();
    appendShutdown(bytes);
    EXPECT_FALSE(h.roundTrip(bytes, frames));
    EXPECT_FALSE(h.worker.protocolError()); // clean stop, not a fault
}

TEST(ShardWorker, CorruptStreamIsAProtocolError)
{
    WorkerHarness h;
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, 1);
    bytes[4] ^= 0x80;
    std::vector<ShardFrame> frames;
    EXPECT_FALSE(h.roundTrip(bytes, frames));
    EXPECT_TRUE(h.worker.protocolError());
}

} // anonymous namespace
