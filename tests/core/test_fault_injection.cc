/**
 * @file
 * FaultInjectingEngine tests: the injected fault pattern must be a
 * pure function of (assignment, measurement index, seed) — identical
 * under any thread count and any serial/batch mix — and the stats
 * contributions must price hangs and count failures correctly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fault_injection.hh"
#include "core/parallel_engine.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::FaultInjectingEngine;
using core::FaultOptions;
using core::MeasurementOutcome;
using core::MeasureStatus;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

sim::SimulatedEngine
makeSim()
{
    return sim::SimulatedEngine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
}

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed = 31)
{
    core::RandomAssignmentSampler sampler(t2, 24, seed);
    return sampler.drawSample(n);
}

FaultOptions
mixedFaults()
{
    FaultOptions faults;
    faults.transientRate = 0.10;
    faults.garbageRate = 0.05;
    faults.hangRate = 0.03;
    faults.outlierRate = 0.05;
    faults.seed = 0xfee1;
    return faults;
}

TEST(FaultInjection, RatesRoughlyMatchOverManyMeasurements)
{
    auto sim = makeSim();
    FaultInjectingEngine faulty(sim, mixedFaults());
    const auto batch = drawBatch(4000);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    faulty.measureBatchOutcome(batch, outcomes);

    std::size_t errored = 0;
    std::size_t invalid = 0;
    std::size_t timed_out = 0;
    std::size_t ok = 0;
    for (const auto &outcome : outcomes) {
        switch (outcome.status) {
          case MeasureStatus::Errored:  ++errored;  break;
          case MeasureStatus::Invalid:  ++invalid;  break;
          case MeasureStatus::TimedOut: ++timed_out; break;
          case MeasureStatus::Ok:       ++ok;       break;
          default: FAIL() << "unexpected status";
        }
    }
    // Binomial(4000, p) stays well within +-40% of its mean.
    EXPECT_NEAR(static_cast<double>(errored), 4000 * 0.10,
                4000 * 0.04);
    EXPECT_NEAR(static_cast<double>(invalid), 4000 * 0.05,
                4000 * 0.02);
    EXPECT_NEAR(static_cast<double>(timed_out), 4000 * 0.03,
                4000 * 0.015);
    EXPECT_EQ(errored, faulty.injectedTransients());
    EXPECT_EQ(invalid, faulty.injectedGarbage());
    EXPECT_EQ(timed_out, faulty.injectedHangs());
    // Outliers are delivered Ok with an inflated value.
    EXPECT_GT(faulty.injectedOutliers(), 0u);
    EXPECT_EQ(ok, batch.size() - errored - invalid - timed_out);
}

TEST(FaultInjection, BitIdenticalAcrossThreadCounts)
{
    const auto batch = drawBatch(600);
    std::vector<std::vector<MeasurementOutcome>> runs;
    for (unsigned threads : {1u, 4u, 16u}) {
        auto sim = makeSim();
        FaultInjectingEngine faulty(sim, mixedFaults());
        core::ParallelEngine parallel(faulty, threads);
        std::vector<MeasurementOutcome> outcomes(batch.size());
        parallel.measureBatchOutcome(batch, outcomes);
        runs.push_back(std::move(outcomes));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(runs[0][i].status, runs[r][i].status)
                << "run " << r << " index " << i;
            if (runs[0][i].ok())
                EXPECT_EQ(runs[0][i].value, runs[r][i].value)
                    << "run " << r << " index " << i;
        }
    }
}

TEST(FaultInjection, SerialCallsMatchOneBatch)
{
    // The cursor reserves one index per measurement either way, so
    // item-by-item measurement equals a single batch.
    const auto batch = drawBatch(80);

    auto sim_serial = makeSim();
    FaultInjectingEngine serial(sim_serial, mixedFaults());
    std::vector<MeasurementOutcome> expected;
    expected.reserve(batch.size());
    for (const auto &a : batch)
        expected.push_back(serial.measureOutcome(a));

    auto sim_batched = makeSim();
    FaultInjectingEngine batched(sim_batched, mixedFaults());
    std::vector<MeasurementOutcome> got(batch.size());
    batched.measureBatchOutcome(batch, got);

    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(expected[i].status, got[i].status) << "index " << i;
        if (expected[i].ok())
            EXPECT_EQ(expected[i].value, got[i].value)
                << "index " << i;
    }
}

TEST(FaultInjection, DoubleChannelSurfacesFailuresAsNaN)
{
    auto sim = makeSim();
    FaultOptions faults;
    faults.transientRate = 1.0;
    FaultInjectingEngine faulty(sim, faults);
    EXPECT_TRUE(std::isnan(faulty.measure(drawBatch(1)[0])));
}

TEST(FaultInjection, OutliersInflateTheCleanReading)
{
    const auto a = drawBatch(1)[0];
    FaultOptions faults;
    faults.outlierRate = 1.0;
    faults.outlierFactor = 3.0;

    auto sim_clean = makeSim();
    const double clean = sim_clean.measure(a);
    auto sim_faulty = makeSim();
    FaultInjectingEngine faulty(sim_faulty, faults);
    const MeasurementOutcome outcome = faulty.measureOutcome(a);
    ASSERT_TRUE(outcome.ok());
    EXPECT_DOUBLE_EQ(outcome.value, 3.0 * clean);
}

TEST(FaultInjection, StatsCountFailuresAndPriceHangs)
{
    auto sim = makeSim();
    FaultOptions faults;
    faults.hangRate = 1.0;
    faults.hangSeconds = 10.0;
    FaultInjectingEngine faulty(sim, faults);
    core::MeteredEngine meter(faulty);

    const auto batch = drawBatch(10);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    meter.measureBatchOutcome(batch, outcomes);
    for (const auto &outcome : outcomes)
        EXPECT_EQ(outcome.status, MeasureStatus::TimedOut);

    const core::EngineStats stats = meter.stats();
    EXPECT_EQ(stats.failures, 10u);
    // The meter charges 1.5 s per requested measurement; each hang
    // costs hangSeconds instead, so the injector adds the difference.
    EXPECT_NEAR(stats.modeledSeconds, 10 * 1.5 + 10 * (10.0 - 1.5),
                1e-9);
}

} // anonymous namespace
