/**
 * @file
 * Trained-predictor engine tests (the paper's Section 5.4 integrated
 * approach).
 */

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "core/predictor.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

TEST(AssignmentFeatures, CountsStructure)
{
    // Two tasks in one pipe, one task alone elsewhere.
    const Assignment a(t2, {0, 1, 8});
    const auto f = core::assignmentFeatures(a);
    EXPECT_DOUBLE_EQ(f[0], 1.0);                 // intercept
    EXPECT_DOUBLE_EQ(f[1], 1.0);                 // one 2-load pipe
    EXPECT_DOUBLE_EQ(f[2], 0.0);                 // no 3-load pipe
    // Same-pipe pairs: exactly one.
    bool found_pair = false;
    for (double v : f)
        found_pair |= (v == 1.0);
    EXPECT_TRUE(found_pair);
}

TEST(AssignmentFeatures, InvariantUnderHardwareSymmetry)
{
    const Assignment a(t2, {0, 1, 8});
    const Assignment b(t2, {56, 57, 16});
    EXPECT_EQ(core::assignmentFeatures(a),
              core::assignmentFeatures(b));
}

TEST(Predictor, LearnsTheSimulatedEngine)
{
    sim::SimulatedEngine oracle(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::TrainedPredictorEngine predictor(oracle, t2, 24, 400, 11);
    const auto acc = predictor.evaluate(oracle, 300, 99);
    // Structural features capture a solid share of the contention
    // model, but far from all of it — exactly the predictor-error
    // caveat the paper raises for the integrated approach.
    EXPECT_GT(acc.rSquared, 0.4);
    EXPECT_LT(acc.meanAbsErrorPct, 0.08);
}

TEST(Predictor, ServesInstantMeasurements)
{
    sim::SimulatedEngine oracle(
        sim::makeWorkload(sim::Benchmark::Stateful, 8));
    core::TrainedPredictorEngine predictor(oracle, t2, 24, 200, 12);
    EXPECT_NEAR(predictor.secondsPerMeasurement(), 1e-6, 1e-12);
    EXPECT_NE(predictor.name().find("predictor"), std::string::npos);

    core::RandomAssignmentSampler sampler(t2, 24, 5);
    const Assignment a = sampler.draw();
    const double p1 = predictor.measure(a);
    const double p2 = predictor.measure(a);
    EXPECT_DOUBLE_EQ(p1, p2);   // deterministic
    EXPECT_GT(p1, 0.0);
}

TEST(Predictor, DrivesTheStatisticalPipeline)
{
    // The integrated approach: run the EVT estimation entirely on
    // predicted performance.
    sim::SimulatedEngine oracle(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::TrainedPredictorEngine predictor(oracle, t2, 24, 400, 13);

    core::OptimalPerformanceEstimator estimator(predictor, t2, 24,
                                                77);
    const auto result = estimator.extend(3000);
    ASSERT_TRUE(result.pot.valid);
    // The predicted-optimum estimate lands within ~15% of the
    // oracle-based estimate.
    core::OptimalPerformanceEstimator oracle_est(oracle, t2, 24, 77);
    const auto oracle_result = oracle_est.extend(3000);
    ASSERT_TRUE(oracle_result.pot.valid);
    EXPECT_NEAR(result.pot.upb, oracle_result.pot.upb,
                0.15 * oracle_result.pot.upb);
}

} // anonymous namespace
