/**
 * @file
 * Campaign runtime tests. The acceptance criterion of the durable
 * runtime: a campaign SIGKILLed at an arbitrary point and resumed
 * from its journal finishes bit-identical to an uninterrupted run.
 * The harness below simulates the kill by truncating the journal at
 * every record boundary (and mid-record) and asserting exact
 * equality of every step, estimate and counter after resume.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "base/clock.hh"
#include "core/campaign.hh"
#include "core/fault_injection.hh"
#include "core/parallel_engine.hh"
#include "core/topology.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::AbortKind;
using core::CampaignOptions;
using core::CampaignResult;
using core::IterativeResult;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();
constexpr std::uint32_t kTasks = 24;
constexpr std::uint64_t kSeed = 5;
constexpr std::uint64_t kConfigHash = 0x5eed;

/** RAII temp file path; removes the file on scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &stem)
        : path_((std::filesystem::temp_directory_path() /
                 ("statsched_campaign_test_" + stem))
                    .string())
    {
        std::filesystem::remove(path_);
    }

    ~TempPath() { std::filesystem::remove(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/**
 * The substrate the journal wraps: Parallel(Fault(Sim)). The upper
 * layers (Resilient, Memoizing, Metered) are assembled by
 * runCampaign itself, in the sanctioned order.
 */
struct Substrate
{
    sim::SimulatedEngine sim;
    core::FaultInjectingEngine faulty;
    core::ParallelEngine parallel;

    explicit Substrate(unsigned threads = 2)
        : sim(sim::makeWorkload(sim::Benchmark::IpfwdL1, 8)),
          faulty(sim, faultOptions()), parallel(faulty, threads)
    {
    }

    static core::FaultOptions
    faultOptions()
    {
        core::FaultOptions faults;
        faults.transientRate = 0.10;
        return faults;
    }
};

/** Campaign configuration shared by the baseline and every resume. */
CampaignOptions
baseOptions(const std::string &journalPath)
{
    CampaignOptions options;
    options.iterative.initialSample = 100;
    options.iterative.incrementSample = 50;
    options.iterative.acceptableLoss = 0.0001; // never satisfied...
    options.iterative.maxSample = 250;         // ...runs to the cap
    options.journalPath = journalPath;
    options.configHash = kConfigHash;
    options.resilient = true;
    options.resilience.maxAttempts = 3;
    options.memoize = true;
    return options;
}

CampaignResult
runFresh(const std::string &journalPath, unsigned threads = 2)
{
    Substrate substrate(threads);
    return core::runCampaign(substrate.parallel, t2, kTasks, kSeed,
                             baseOptions(journalPath));
}

CampaignResult
runResumed(const std::string &journalPath, unsigned threads = 2)
{
    Substrate substrate(threads);
    CampaignOptions options = baseOptions(journalPath);
    options.resume = true;
    return core::runCampaign(substrate.parallel, t2, kTasks, kSeed,
                             options);
}

/** Asserts two search results are bit-identical, field by field. */
void
expectBitIdentical(const IterativeResult &a, const IterativeResult &b,
                   const std::string &context)
{
    SCOPED_TRACE(context);
    EXPECT_EQ(a.satisfied, b.satisfied);
    EXPECT_EQ(a.totalSampled, b.totalSampled);
    EXPECT_EQ(a.totalAttempted, b.totalAttempted);
    EXPECT_EQ(a.totalFailed, b.totalFailed);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        SCOPED_TRACE("step " + std::to_string(i));
        EXPECT_EQ(a.steps[i].sampleSize, b.steps[i].sampleSize);
        EXPECT_EQ(a.steps[i].bestObserved, b.steps[i].bestObserved);
        EXPECT_EQ(a.steps[i].upb, b.steps[i].upb);
        EXPECT_EQ(a.steps[i].upbUpper, b.steps[i].upbUpper);
        EXPECT_EQ(a.steps[i].loss, b.steps[i].loss);
        EXPECT_EQ(a.steps[i].attempted, b.steps[i].attempted);
        EXPECT_EQ(a.steps[i].failed, b.steps[i].failed);
    }
    ASSERT_EQ(a.final.sample.size(), b.final.sample.size());
    EXPECT_EQ(a.final.sample, b.final.sample);
    EXPECT_EQ(a.final.bestObserved, b.final.bestObserved);
    EXPECT_EQ(a.final.pot.upb, b.final.pot.upb);
    EXPECT_EQ(a.final.pot.upbLower, b.final.pot.upbLower);
    EXPECT_EQ(a.final.pot.upbUpper, b.final.pot.upbUpper);
    EXPECT_EQ(a.final.pot.valid, b.final.pot.valid);
    ASSERT_EQ(a.final.bestAssignment.has_value(),
              b.final.bestAssignment.has_value());
    if (a.final.bestAssignment) {
        EXPECT_EQ(a.final.bestAssignment->canonicalKey(),
                  b.final.bestAssignment->canonicalKey());
    }
}

/**
 * @return byte offsets of every record boundary in the journal:
 * positions where a SIGKILL would leave a clean prefix. Offsets
 * between them (mid-record) model a torn write.
 */
std::vector<std::uint64_t>
recordBoundaries(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::vector<unsigned char> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    std::vector<std::uint64_t> boundaries;
    std::uint64_t at = 44; // header size
    while (at < bytes.size()) {
        boundaries.push_back(at);
        // frame: type:u8 size:u16(LE) payload crc:u32
        const std::uint64_t size = static_cast<std::uint64_t>(
            bytes[at + 1] | (bytes[at + 2] << 8));
        at += 1 + 2 + size + 4;
    }
    boundaries.push_back(at); // end of file
    return boundaries;
}

void
copyTruncated(const std::string &from, const std::string &to,
              std::uint64_t size)
{
    std::filesystem::copy_file(
        from, to, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(to, size);
}

TEST(Campaign, JournalingLayerIsTransparent)
{
    TempPath journal("transparent");
    const CampaignResult journaled = runFresh(journal.str());
    ASSERT_TRUE(journaled.ran);
    EXPECT_TRUE(journaled.journalError.empty());
    EXPECT_GT(journaled.recordedMeasurements, 0u);

    Substrate substrate;
    CampaignOptions plain = baseOptions("");
    const CampaignResult bare = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed, plain);
    ASSERT_TRUE(bare.ran);
    expectBitIdentical(journaled.search, bare.search,
                       "journaled vs plain");
}

TEST(Campaign, ResumeAfterKillAtEveryRecordBoundaryIsBitIdentical)
{
    TempPath full("kill_full");
    const CampaignResult baseline = runFresh(full.str());
    ASSERT_TRUE(baseline.ran);
    ASSERT_TRUE(baseline.journalError.empty());
    EXPECT_FALSE(baseline.aborted());

    const std::vector<std::uint64_t> boundaries =
        recordBoundaries(full.str());
    ASSERT_GT(boundaries.size(), 10u);

    for (std::size_t i = 0; i < boundaries.size(); ++i) {
        TempPath torn("kill_cut");
        copyTruncated(full.str(), torn.str(), boundaries[i]);
        // Alternate the resumed thread count: batch decomposition
        // must not leak into the statistics.
        const unsigned threads = (i % 2 == 0) ? 1 : 4;
        const CampaignResult resumed =
            runResumed(torn.str(), threads);
        ASSERT_TRUE(resumed.ran) << resumed.journalError;
        ASSERT_TRUE(resumed.journalError.empty())
            << "boundary " << i << ": " << resumed.journalError;
        EXPECT_TRUE(resumed.resumed);
        expectBitIdentical(
            baseline.search, resumed.search,
            "kill at record boundary " + std::to_string(i) + " (" +
                std::to_string(boundaries[i]) + " bytes)");
        EXPECT_EQ(resumed.replayedMeasurements +
                      resumed.recordedMeasurements,
                  baseline.recordedMeasurements)
            << "boundary " << i;
    }
}

TEST(Campaign, ResumeAfterTornRecordIsBitIdentical)
{
    TempPath full("torn_full");
    const CampaignResult baseline = runFresh(full.str());
    ASSERT_TRUE(baseline.ran);

    const std::vector<std::uint64_t> boundaries =
        recordBoundaries(full.str());
    // Cut mid-record — 3 bytes past a boundary lands inside the
    // frame header/payload; the final cut tears the last record.
    std::vector<std::uint64_t> cuts;
    for (std::size_t i = 1; i < boundaries.size();
         i += boundaries.size() / 7 + 1)
        cuts.push_back(boundaries[i - 1] + 3);
    cuts.push_back(boundaries.back() - 1); // torn final record

    for (const std::uint64_t cut : cuts) {
        TempPath torn("torn_cut");
        copyTruncated(full.str(), torn.str(), cut);
        const CampaignResult resumed = runResumed(torn.str());
        ASSERT_TRUE(resumed.ran) << resumed.journalError;
        ASSERT_TRUE(resumed.journalError.empty())
            << "cut at " << cut << ": " << resumed.journalError;
        EXPECT_GT(resumed.journalTruncatedBytes, 0u)
            << "cut at " << cut;
        expectBitIdentical(baseline.search, resumed.search,
                           "torn record at " + std::to_string(cut));
    }
}

TEST(Campaign, InterruptCheckpointsAndResumeCompletes)
{
    TempPath baselinePath("intr_base");
    const CampaignResult baseline = runFresh(baselinePath.str());

    TempPath journal("intr");
    Substrate substrate;
    CampaignOptions options = baseOptions(journal.str());
    int probes = 0;
    options.stopRequested = [&probes] { return ++probes > 2; };
    const CampaignResult interrupted = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed, options);
    ASSERT_TRUE(interrupted.ran);
    EXPECT_EQ(interrupted.search.abortKind, AbortKind::Interrupted);
    EXPECT_FALSE(interrupted.search.abortReason.empty());
    EXPECT_LT(interrupted.search.steps.size(),
              baseline.search.steps.size());
    // The journal carries an Aborted checkpoint and only complete
    // groups — a clean stopping point.
    const core::JournalRecovery recovery =
        core::recoverJournal(journal.str());
    ASSERT_TRUE(recovery.headerValid);
    ASSERT_FALSE(recovery.checkpoints.empty());
    EXPECT_EQ(recovery.checkpoints.back().kind,
              core::CheckpointKind::Aborted);
    EXPECT_EQ(recovery.truncatedBytes, 0u);

    const CampaignResult resumed = runResumed(journal.str());
    ASSERT_TRUE(resumed.ran) << resumed.journalError;
    EXPECT_FALSE(resumed.aborted());
    expectBitIdentical(baseline.search, resumed.search,
                       "resume after interrupt");
}

/** A clock that ticks one second per reading. */
class TickingClock : public base::Clock
{
  public:
    double nowSeconds() override { return now_ += 1.0; }

  private:
    double now_ = 0.0;
};

TEST(Campaign, DeadlineAbortsAndResumeCompletes)
{
    TempPath baselinePath("deadline_base");
    const CampaignResult baseline = runFresh(baselinePath.str());

    TempPath journal("deadline");
    Substrate substrate;
    CampaignOptions options = baseOptions(journal.str());
    TickingClock clock;
    options.clock = &clock;
    options.deadlineSeconds = 1.5; // exceeded at the second probe
    const CampaignResult timed = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed, options);
    ASSERT_TRUE(timed.ran);
    EXPECT_EQ(timed.search.abortKind, AbortKind::DeadlineExceeded);

    const CampaignResult resumed = runResumed(journal.str());
    ASSERT_TRUE(resumed.ran) << resumed.journalError;
    EXPECT_FALSE(resumed.aborted());
    expectBitIdentical(baseline.search, resumed.search,
                       "resume after deadline");
}

TEST(Campaign, MeasurementBudgetAbortsAndResumeCompletes)
{
    TempPath baselinePath("budget_base");
    const CampaignResult baseline = runFresh(baselinePath.str());

    TempPath journal("budget");
    Substrate substrate;
    CampaignOptions options = baseOptions(journal.str());
    options.maxMeasurements = 120;
    const CampaignResult capped = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed, options);
    ASSERT_TRUE(capped.ran);
    EXPECT_EQ(capped.search.abortKind, AbortKind::BudgetExhausted);
    EXPECT_GE(capped.engineStats.measurements, 120u);

    const CampaignResult resumed = runResumed(journal.str());
    ASSERT_TRUE(resumed.ran) << resumed.journalError;
    EXPECT_FALSE(resumed.aborted());
    expectBitIdentical(baseline.search, resumed.search,
                       "resume after budget");
}

TEST(Campaign, RoundLimitAborts)
{
    TempPath journal("rounds");
    Substrate substrate;
    CampaignOptions options = baseOptions(journal.str());
    options.maxRounds = 1;
    const CampaignResult limited = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed, options);
    ASSERT_TRUE(limited.ran);
    EXPECT_EQ(limited.search.abortKind, AbortKind::RoundLimit);
    EXPECT_EQ(limited.search.steps.size(), 1u);
}

TEST(Campaign, ResumeRejectsForeignJournal)
{
    TempPath journal("foreign");
    ASSERT_TRUE(runFresh(journal.str()).ran);

    Substrate substrate;
    CampaignOptions options = baseOptions(journal.str());
    options.resume = true;
    // Same journal, different seed: identity mismatch, not replay.
    const CampaignResult wrongSeed = core::runCampaign(
        substrate.parallel, t2, kTasks, kSeed + 1, options);
    EXPECT_FALSE(wrongSeed.ran);
    EXPECT_FALSE(wrongSeed.journalError.empty());

    // Different config hash: also a mismatch.
    Substrate substrate2;
    CampaignOptions reconfigured = baseOptions(journal.str());
    reconfigured.resume = true;
    reconfigured.configHash = kConfigHash + 1;
    const CampaignResult wrongConfig = core::runCampaign(
        substrate2.parallel, t2, kTasks, kSeed, reconfigured);
    EXPECT_FALSE(wrongConfig.ran);
    EXPECT_FALSE(wrongConfig.journalError.empty());

    // Missing journal: cannot resume what never ran.
    TempPath missing("foreign_missing");
    Substrate substrate3;
    CampaignOptions absent = baseOptions(missing.str());
    absent.resume = true;
    const CampaignResult noFile = core::runCampaign(
        substrate3.parallel, t2, kTasks, kSeed, absent);
    EXPECT_FALSE(noFile.ran);
    EXPECT_FALSE(noFile.journalError.empty());
}

} // namespace
