/**
 * @file
 * Assignment-space counting tests, anchored to Table 1 of the paper.
 */

#include <gtest/gtest.h>

#include "core/assignment_space.hh"
#include "core/enumerator.hh"

namespace
{

using namespace statsched::core;
using statsched::num::BigUint;

const Topology t2 = Topology::ultraSparcT2();

TEST(AssignmentSpace, CoreArrangementsSmallValues)
{
    const AssignmentSpace space(t2);
    // Hand-derived for 2 pipes x 4 strands:
    // c(1)=1, c(2)=2, c(3)=4, c(4)=8, c(5)=15, c(6)=25, c(7)=35,
    // c(8)=35.
    EXPECT_EQ(space.coreArrangements(0).toUint64(), 1u);
    EXPECT_EQ(space.coreArrangements(1).toUint64(), 1u);
    EXPECT_EQ(space.coreArrangements(2).toUint64(), 2u);
    EXPECT_EQ(space.coreArrangements(3).toUint64(), 4u);
    EXPECT_EQ(space.coreArrangements(4).toUint64(), 8u);
    EXPECT_EQ(space.coreArrangements(5).toUint64(), 15u);
    EXPECT_EQ(space.coreArrangements(6).toUint64(), 25u);
    EXPECT_EQ(space.coreArrangements(7).toUint64(), 35u);
    EXPECT_EQ(space.coreArrangements(8).toUint64(), 35u);
}

TEST(AssignmentSpace, PaperThreeTaskExample)
{
    // Section 2: "When the workload is comprised of 3 tasks, the
    // number of possible task assignments is 11."
    const AssignmentSpace space(t2);
    EXPECT_EQ(space.countAssignments(3).toUint64(), 11u);
}

TEST(AssignmentSpace, MatchesExhaustiveEnumeration)
{
    const AssignmentSpace space(t2);
    for (std::uint32_t tasks = 1; tasks <= 6; ++tasks) {
        const AssignmentEnumerator enumerator(t2, tasks);
        EXPECT_EQ(space.countAssignments(tasks).toUint64(),
                  enumerator.count()) << tasks;
    }
}

TEST(AssignmentSpace, Table1Magnitudes)
{
    // The Table 1 rows: counts grow from ~1.5e3 (6 tasks) to ~e58
    // (60 tasks). Digit counts pin the magnitudes.
    const AssignmentSpace space(t2);
    EXPECT_EQ(space.countAssignments(6).toUint64(), 1526u);
    EXPECT_EQ(space.countAssignments(9).toUint64(), 592573u);
    EXPECT_EQ(space.countAssignments(12).digitCount(), 9u);  // ~4.6e8
    EXPECT_EQ(space.countAssignments(15).digitCount(), 12u); // ~6e11
    EXPECT_EQ(space.countAssignments(18).digitCount(), 16u); // ~1e15
    EXPECT_EQ(space.countAssignments(60).digitCount(), 59u); // ~5e58
}

TEST(AssignmentSpace, SixtyTaskExecutionTimeMatchesPaper)
{
    // 1 second per assignment -> 1.75e51 years (the paper's value).
    const AssignmentSpace space(t2);
    const BigUint count = space.countAssignments(60);
    const BigUint years = count / BigUint(31557600u);
    EXPECT_EQ(years.toScientific(2), "1.74e51");
}

TEST(AssignmentSpace, LabeledPlacements)
{
    const AssignmentSpace space(t2);
    // V * (V-1) * ... ordered placements.
    EXPECT_EQ(space.countLabeledPlacements(1).toUint64(), 64u);
    EXPECT_EQ(space.countLabeledPlacements(2).toUint64(),
              64u * 63u);
    EXPECT_EQ(space.countLabeledPlacements(3).toUint64(),
              64u * 63u * 62u);
}

TEST(AssignmentSpace, FullChipCount)
{
    // All 64 contexts busy: the count equals 64! / (8! * (2!*(4!)^2
    // per-core symmetry)...) — at minimum it must be huge and exact.
    const AssignmentSpace space(t2);
    const BigUint full = space.countAssignments(64);
    EXPECT_GT(full.digitCount(), 55u);
    // Monotone growth in workload size until well past half load.
    BigUint prev;
    for (std::uint32_t t = 1; t <= 40; ++t) {
        const BigUint cur = space.countAssignments(t);
        EXPECT_GT(cur, prev) << t;
        prev = cur;
    }
}

TEST(AssignmentSpace, TinyTopologies)
{
    // 1 core, 1 pipe, 2 strands: any task set has exactly one
    // arrangement.
    const AssignmentSpace tiny({1, 1, 2});
    EXPECT_EQ(tiny.countAssignments(1).toUint64(), 1u);
    EXPECT_EQ(tiny.countAssignments(2).toUint64(), 1u);

    // 2 cores, 1 pipe, 1 strand: 2 tasks have exactly one split.
    const AssignmentSpace pair({2, 1, 1});
    EXPECT_EQ(pair.countAssignments(1).toUint64(), 1u);
    EXPECT_EQ(pair.countAssignments(2).toUint64(), 1u);

    // 2 cores x 1 pipe x 2 strands, 2 tasks: together or split = 2.
    const AssignmentSpace small({2, 1, 2});
    EXPECT_EQ(small.countAssignments(2).toUint64(), 2u);
}

TEST(AssignmentSpace, ThreePipeCoreDp)
{
    // 1 core with 3 pipes x 1 strand: 3 tasks must occupy all three
    // pipes -> exactly 1 arrangement; 2 tasks -> 1 (two unlabeled
    // singleton pipes).
    const AssignmentSpace space({1, 3, 1});
    EXPECT_EQ(space.countAssignments(2).toUint64(), 1u);
    EXPECT_EQ(space.countAssignments(3).toUint64(), 1u);

    // 1 core, 3 pipes x 2 strands, 3 tasks: partitions of 3 tasks
    // into <= 3 unlabeled pipes of <= 2: {a|b|c}, {ab|c}, {ac|b},
    // {bc|a} -> 4.
    const AssignmentSpace wide({1, 3, 2});
    EXPECT_EQ(wide.countAssignments(3).toUint64(), 4u);
}

} // anonymous namespace
