/**
 * @file
 * Integration tests: the complete paper pipeline — random sampling,
 * POT/EVT estimation, confidence intervals and the iterative
 * algorithm — running against the simulated UltraSPARC T2 and the
 * five case-study benchmarks, checking the qualitative results of
 * Sections 5.1-5.3.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hh"
#include "core/enumerator.hh"
#include "core/estimator.hh"
#include "core/iterative.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/diagnostics.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

TEST(FullMethod, EstimateInvariantsAcrossTheSuite)
{
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator estimator(engine, t2, 24,
                                                    123);
        const auto result = estimator.extend(1500);
        ASSERT_TRUE(result.pot.valid) << benchmarkName(b);
        // xi-hat < 0: bounded performance, as the paper argues.
        EXPECT_LT(result.pot.fit.xi, 0.0) << benchmarkName(b);
        // Ordering: best observed <= UPB point <= CI upper.
        EXPECT_LE(result.bestObserved, result.pot.upb * 1.0005)
            << benchmarkName(b);
        EXPECT_GE(result.pot.upbLower,
                  result.bestObserved * 0.999) << benchmarkName(b);
        // Exceedances capped at 5% (75 of 1500).
        EXPECT_LE(result.pot.exceedanceCount, 75u)
            << benchmarkName(b);
        // Loss within a plausible band (paper: below ~10% at this
        // scale).
        EXPECT_GE(result.estimatedLoss(), 0.0) << benchmarkName(b);
        EXPECT_LE(result.estimatedLoss(), 0.15) << benchmarkName(b);
    }
}

TEST(FullMethod, LossShrinksFromMidToLargeSamples)
{
    // Section 5.2: the best-in-sample closes on the estimated
    // optimum as the sample grows (compare n=500 vs n=4000, which
    // is robust to seed noise).
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::OptimalPerformanceEstimator estimator(engine, t2, 24, 321);
    const auto small = estimator.extend(500);
    const auto large = estimator.extend(3500);
    ASSERT_TRUE(small.pot.valid);
    ASSERT_TRUE(large.pot.valid);
    EXPECT_GE(large.bestObserved, small.bestObserved);
    EXPECT_LE(large.estimatedLoss(), small.estimatedLoss() + 0.02);
}

TEST(FullMethod, ExhaustiveSixThreadOptimumBeatsBaselines)
{
    // The Figure 1 experiment: exhaustive enumeration of the
    // 6-thread workload; optimal > Linux-like > naive for intadd.
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdIntAdd, 2),
                           {}, {0.0, 1, 1.5});
    double optimal = 0.0;
    core::AssignmentEnumerator enumerator(t2, 6);
    const std::uint64_t classes = enumerator.forEach(
        [&engine, &optimal](const Assignment &a) {
            optimal = std::max(optimal, engine.deterministic(a));
            return true;
        });
    EXPECT_EQ(classes, 1526u);

    const double linux_like = engine.deterministic(
        core::linuxLikeAssignment(t2, 6));
    const double naive = core::naiveExpectedPerformance(
        engine, t2, 6, 300, 777);

    EXPECT_GT(optimal, linux_like);
    EXPECT_GT(linux_like, naive);
    // Paper magnitudes: optimal ~1.7 MPPS, naive ~22% below it.
    EXPECT_NEAR(optimal, 1.69e6, 0.12e6);
    EXPECT_NEAR((optimal - naive) / naive, 0.22, 0.08);
}

TEST(FullMethod, SampledBestApproachesExhaustiveOptimum)
{
    // Section 3.1: several hundred random draws land in the top
    // 1-2% of the 1526-class population.
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdIntMul, 2),
                           {}, {0.0, 1, 1.5});
    double optimal = 0.0;
    core::AssignmentEnumerator(t2, 6).forEach(
        [&engine, &optimal](const Assignment &a) {
            optimal = std::max(optimal, engine.deterministic(a));
            return true;
        });

    core::RandomAssignmentSampler sampler(t2, 6, 888);
    double best = 0.0;
    for (int i = 0; i < 800; ++i)
        best = std::max(best, engine.deterministic(sampler.draw()));
    EXPECT_GT(best, 0.97 * optimal);
}

TEST(FullMethod, IterativeAlgorithmMeetsPaperStyleTargets)
{
    // Section 5.3: a few thousand assignments reach a 2.5% loss; a
    // 10% target needs (weakly) fewer.
    SimulatedEngine tight_engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::IterativeOptions tight;
    tight.initialSample = 500;
    tight.incrementSample = 100;
    tight.acceptableLoss = 0.025;
    tight.maxSample = 12000;
    const auto tight_run = core::iterativeAssignmentSearch(
        tight_engine, t2, 24, 999, tight);
    EXPECT_TRUE(tight_run.satisfied);
    EXPECT_LE(tight_run.totalSampled, 12000u);

    SimulatedEngine loose_engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::IterativeOptions loose = tight;
    loose.acceptableLoss = 0.10;
    const auto loose_run = core::iterativeAssignmentSearch(
        loose_engine, t2, 24, 999, loose);
    EXPECT_TRUE(loose_run.satisfied);
    EXPECT_LE(loose_run.totalSampled, tight_run.totalSampled);
}

TEST(FullMethod, GpdQuantilePlotIsStraightOnSuiteData)
{
    // Section 3.3.2: "the form of quantile plots strongly suggest
    // that samples of observations follow a GPD".
    SimulatedEngine engine(makeWorkload(Benchmark::Stateful, 8));
    core::OptimalPerformanceEstimator estimator(engine, t2, 24, 55);
    const auto result = estimator.extend(2000);
    ASSERT_TRUE(result.pot.valid);

    const auto sel = stats::selectThreshold(result.sample, {});
    const auto plot = stats::gpdQuantilePlot(
        sel.exceedances, result.pot.fit.distribution());
    EXPECT_GT(plot.rSquared, 0.9);
}

TEST(FullMethod, MeteredExperimentTimeMatchesPaperScale)
{
    // Section 5.4: 1000/2000/5000 measurements at 1.5 s each are
    // about 25/50/120 minutes of experimentation.
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::MeteredEngine metered(engine);
    core::OptimalPerformanceEstimator estimator(metered, t2, 24, 1);
    estimator.extend(1000);
    EXPECT_NEAR(metered.stats().modeledSeconds / 60.0, 25.0, 0.1);
}

} // anonymous namespace
