/**
 * @file
 * Tests for the statsched_lint rule engine.
 *
 * Two halves: deliberately-seeded bad snippets must fire exactly the
 * expected rule ids (so every rule is proven live, not just
 * documented), and the real source tree must lint clean (so the
 * rules describe the code that actually ships).
 *
 * The snippets are ordinary string literals — the linter strips
 * literals before matching, so this file itself stays clean under
 * the tree-wide run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

using statsched::lint::Finding;
using statsched::lint::lintContent;
using statsched::lint::lintTree;
using statsched::lint::ruleCatalogue;

/** @return all rule ids fired on the snippet. */
std::vector<std::string>
firedRules(const std::string &path, const std::string &content)
{
    std::vector<std::string> rules;
    for (const Finding &finding : lintContent(path, content))
        rules.push_back(finding.rule);
    return rules;
}

bool
fired(const std::vector<std::string> &rules, const std::string &id)
{
    return std::find(rules.begin(), rules.end(), id) != rules.end();
}

TEST(Lint, WallclockFiresInDeterministicModule)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "double f() {\n"
        "    auto t = std::chrono::steady_clock::now();\n"
        "    return time(nullptr);\n"
        "}\n";
    const auto rules = firedRules("src/stats/foo.cc", snippet);
    EXPECT_TRUE(fired(rules, "statsched-wallclock"));
    // Two independent wall-clock reads, two findings.
    EXPECT_EQ(2, std::count(rules.begin(), rules.end(),
                            std::string("statsched-wallclock")));
}

TEST(Lint, WallclockFiresOutsideDeterministicModules)
{
    // base::Clock is the only sanctioned time source everywhere in
    // src/ — a direct read in e.g. src/core or src/net would make a
    // campaign unreplayable even though src/net is not on the
    // deterministic-module list.
    const std::string coreSnippet =
        "#include \"core/foo.hh\"\n"
        "double f() { return "
        "std::chrono::steady_clock::now().time_since_epoch().count();"
        " }\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.cc", coreSnippet),
                      "statsched-wallclock"));
    const std::string netSnippet =
        "#include \"net/foo.hh\"\n"
        "double f() { return time(nullptr); }\n";
    EXPECT_TRUE(fired(firedRules("src/net/foo.cc", netSnippet),
                      "statsched-wallclock"));
}

TEST(Lint, WallclockAllowedInClockExemptModules)
{
    // src/base implements base::Clock itself; src/hw measures real
    // elapsed time. Both may read wall clocks directly.
    const std::string hwSnippet =
        "#include \"hw/foo.hh\"\n"
        "double f() { return time(nullptr); }\n";
    EXPECT_FALSE(fired(firedRules("src/hw/foo.cc", hwSnippet),
                       "statsched-wallclock"));
    const std::string baseSnippet =
        "#include \"base/foo.hh\"\n"
        "double f() {\n"
        "    auto t = std::chrono::steady_clock::now();\n"
        "    return t.time_since_epoch().count();\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/base/foo.cc", baseSnippet),
                       "statsched-wallclock"));
}

TEST(Lint, AmbientRngFires)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "int f() { std::random_device rd; return rand(); }\n";
    const auto rules = firedRules("src/core/foo.cc", snippet);
    EXPECT_TRUE(fired(rules, "statsched-ambient-rng"));
}

TEST(Lint, UnorderedIterationFires)
{
    const std::string snippet =
        "#include \"sim/foo.hh\"\n"
        "#include <unordered_map>\n"
        "double f(const std::unordered_map<int, double> &weights) {\n"
        "    double sum = 0.0;\n"
        "    for (const auto &entry : weights)\n"
        "        sum += entry.second;\n"
        "    return sum;\n"
        "}\n";
    EXPECT_TRUE(fired(firedRules("src/sim/foo.cc", snippet),
                      "statsched-unordered-iteration"));
}

TEST(Lint, UnorderedIteratorLoopFires)
{
    const std::string snippet =
        "#include \"num/foo.hh\"\n"
        "#include <unordered_set>\n"
        "int f() {\n"
        "    std::unordered_set<int> seen;\n"
        "    int n = 0;\n"
        "    for (auto it = seen.begin(); it != seen.end(); ++it)\n"
        "        ++n;\n"
        "    return n;\n"
        "}\n";
    EXPECT_TRUE(fired(firedRules("src/num/foo.cc", snippet),
                      "statsched-unordered-iteration"));
}

TEST(Lint, UnorderedLookupDoesNotFire)
{
    // find()/count()/emplace() are order-independent; only
    // iteration leaks hash order.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include <unordered_map>\n"
        "double f(const std::unordered_map<int, double> &cache) {\n"
        "    const auto it = cache.find(7);\n"
        "    return it == cache.end() ? 0.0 : it->second;\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.cc", snippet),
                       "statsched-unordered-iteration"));
}

TEST(Lint, RawAssertFires)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "#include <cassert>\n"
        "void f(int n) { assert(n > 0); }\n";
    const auto rules = firedRules("src/stats/foo.cc", snippet);
    EXPECT_EQ(2, std::count(rules.begin(), rules.end(),
                            std::string("statsched-raw-assert")));
}

TEST(Lint, LegacyStatschedAssertFires)
{
    const std::string snippet =
        "#include \"net/foo.hh\"\n"
        "void f(int n) { STATSCHED_ASSERT(n > 0, \"positive\"); }\n";
    EXPECT_TRUE(fired(firedRules("src/net/foo.cc", snippet),
                      "statsched-raw-assert"));
}

TEST(Lint, ContractMacrosAreClean)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "#include \"base/check.hh\"\n"
        "void f(int n) { SCHED_REQUIRE(n > 0, \"positive\"); }\n";
    EXPECT_TRUE(firedRules("src/stats/foo.cc", snippet).empty());
}

TEST(Lint, StdoutFiresInLibraryCode)
{
    const std::string snippet =
        "#include \"num/foo.hh\"\n"
        "#include <cstdio>\n"
        "void f() { printf(\"hello\\n\"); }\n";
    EXPECT_TRUE(fired(firedRules("src/num/foo.cc", snippet),
                      "statsched-stdout"));
}

TEST(Lint, StderrLoggingIsClean)
{
    const std::string snippet =
        "#include \"num/foo.hh\"\n"
        "#include <cstdio>\n"
        "void f() { std::fprintf(stderr, \"warn\\n\"); }\n";
    EXPECT_FALSE(fired(firedRules("src/num/foo.cc", snippet),
                       "statsched-stdout"));
}

TEST(Lint, StdoutAllowedInTools)
{
    const std::string snippet =
        "#include <cstdio>\n"
        "int main() { printf(\"report\\n\"); }\n";
    EXPECT_TRUE(firedRules("tools/report.cc", snippet).empty());
}

TEST(Lint, IncludeGuardMissingFires)
{
    const std::string snippet =
        "#pragma once\n"
        "int f();\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.hh", snippet),
                      "statsched-include-guard"));
}

TEST(Lint, IncludeGuardWrongNameFires)
{
    const std::string snippet =
        "#ifndef FOO_H\n"
        "#define FOO_H\n"
        "#endif\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.hh", snippet),
                      "statsched-include-guard"));
}

TEST(Lint, CanonicalIncludeGuardIsClean)
{
    const std::string snippet =
        "#ifndef STATSCHED_CORE_FOO_HH\n"
        "#define STATSCHED_CORE_FOO_HH\n"
        "int f();\n"
        "#endif // STATSCHED_CORE_FOO_HH\n";
    EXPECT_TRUE(firedRules("src/core/foo.hh", snippet).empty());
}

TEST(Lint, OwnHeaderFirstFires)
{
    const std::string snippet =
        "#include <vector>\n"
        "#include \"core/foo.hh\"\n"
        "int f() { return 1; }\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.cc", snippet),
                      "statsched-include-own-first"));
}

TEST(Lint, OwnHeaderFirstClean)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include <vector>\n"
        "int f() { return 1; }\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.cc", snippet),
                       "statsched-include-own-first"));
}

TEST(Lint, NolintWithReasonSuppresses)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include <unordered_map>\n"
        "double f(const std::unordered_map<int, double> &m) {\n"
        "    double s = 0.0;\n"
        "    for (const auto &e : m)"
        " // NOLINT(statsched-unordered-iteration): summed, so"
        " order-independent\n"
        "        s += e.second;\n"
        "    return s;\n"
        "}\n";
    const auto rules = firedRules("src/core/foo.cc", snippet);
    EXPECT_FALSE(fired(rules, "statsched-unordered-iteration"));
    EXPECT_FALSE(fired(rules, "statsched-nolint-reason"));
}

TEST(Lint, NolintWithoutReasonIsItselfAFinding)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include <unordered_map>\n"
        "double f(const std::unordered_map<int, double> &m) {\n"
        "    double s = 0.0;\n"
        "    for (const auto &e : m)"
        " // NOLINT(statsched-unordered-iteration)\n"
        "        s += e.second;\n"
        "    return s;\n"
        "}\n";
    const auto rules = firedRules("src/core/foo.cc", snippet);
    EXPECT_FALSE(fired(rules, "statsched-unordered-iteration"));
    EXPECT_TRUE(fired(rules, "statsched-nolint-reason"));
}

TEST(Lint, NolintOnlySuppressesTheNamedRule)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "int f() { return rand(); }"
        " // NOLINT(statsched-wallclock): wrong rule named\n";
    EXPECT_TRUE(fired(firedRules("src/stats/foo.cc", snippet),
                      "statsched-ambient-rng"));
}

TEST(Lint, CommentsAndStringsDoNotFire)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "// calling rand() here would break determinism\n"
        "/* and so would std::cout << time(nullptr); */\n"
        "const char *kDoc = \"uses rand() and assert()\";\n";
    EXPECT_TRUE(firedRules("src/stats/foo.cc", snippet).empty());
}

TEST(Lint, FindingFormatIsMachineReadable)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "int f() { return rand(); }\n";
    const auto findings = lintContent("src/stats/foo.cc", snippet);
    ASSERT_EQ(1u, findings.size());
    EXPECT_EQ(0u, findings[0].format().find(
                      "src/stats/foo.cc:2: [statsched-ambient-rng]"));
}

TEST(Lint, CatalogueCoversEveryRuleId)
{
    std::vector<std::string> ids;
    for (const auto &rule : ruleCatalogue())
        ids.push_back(rule.id);
    for (const char *expected :
         {"statsched-wallclock", "statsched-ambient-rng",
          "statsched-unordered-iteration", "statsched-raw-assert",
          "statsched-stdout", "statsched-include-guard",
          "statsched-include-own-first", "statsched-nolint-reason",
          "statsched-sim-hot-alloc", "statsched-no-raw-process",
          "statsched-raw-file-io", "statsched-raw-sync-primitive",
          "statsched-unguarded-member", "statsched-detached-thread",
          "statsched-float-reduction-order"}) {
        EXPECT_TRUE(fired(ids, expected)) << expected;
    }
}

TEST(Lint, NoRawProcessFiresEverywhere)
{
    // Unlike the library-only rules, raw process control is banned
    // in tools, tests and benches too — every child goes through
    // base::Subprocess.
    const std::string snippet =
        "#include <unistd.h>\n"
        "int f() {\n"
        "    int fds[2];\n"
        "    pipe(fds);\n"
        "    pid_t child = fork();\n"
        "    int status = 0;\n"
        "    waitpid(child, &status, 0);\n"
        "    return status;\n"
        "}\n";
    for (const char *path :
         {"src/core/foo.cc", "tools/runner.cc",
          "tests/core/test_foo.cc", "bench/bench_foo.cc"}) {
        const auto rules = firedRules(path, snippet);
        EXPECT_EQ(3,
                  std::count(rules.begin(), rules.end(),
                             std::string("statsched-no-raw-process")))
            << path;
    }
}

TEST(Lint, NoRawProcessFiresOnExecAndPopenAndSystem)
{
    const std::string snippet =
        "#include <cstdlib>\n"
        "void f(const char *cmd) {\n"
        "    execvp(cmd, nullptr);\n"
        "    popen(cmd, \"r\");\n"
        "    std::system(cmd);\n"
        "}\n";
    const auto rules = firedRules("tools/runner.cc", snippet);
    EXPECT_EQ(3, std::count(rules.begin(), rules.end(),
                            std::string("statsched-no-raw-process")));
}

TEST(Lint, NoRawProcessExemptInSubprocessWrapper)
{
    // src/base/subprocess.* is the sanctioned home of these calls.
    const std::string snippet =
        "#include \"base/subprocess.hh\"\n"
        "void f() {\n"
        "    int fds[2];\n"
        "    pipe(fds);\n"
        "    fork();\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/base/subprocess.cc", snippet),
                       "statsched-no-raw-process"));
    EXPECT_FALSE(fired(firedRules("src/base/subprocess.hh", snippet),
                       "statsched-no-raw-process"));
}

TEST(Lint, RawFileIoFiresInCoreOnly)
{
    // src/core routes all file bytes through base::io sinks; the
    // same calls are legitimate in src/base (where the sink layer
    // lives), in tools and in tests.
    const std::string snippet =
        "#include <cstdio>\n"
        "#include <unistd.h>\n"
        "void f(int fd, const void *p, size_t n) {\n"
        "    FILE *out = fopen(\"x\", \"w\");\n"
        "    fwrite(p, 1, n, out);\n"
        "    fclose(out);\n"
        "    ::write(fd, p, n);\n"
        "    ::fsync(fd);\n"
        "}\n";
    const auto core = firedRules("src/core/foo.cc", snippet);
    EXPECT_EQ(5, std::count(core.begin(), core.end(),
                            std::string("statsched-raw-file-io")));
    for (const char *path :
         {"src/base/io.hh", "tools/runner.cc",
          "tests/core/test_foo.cc"}) {
        EXPECT_FALSE(fired(firedRules(path, snippet),
                           "statsched-raw-file-io"))
            << path;
    }
}

TEST(Lint, RawFileIoFiresOnFileStreams)
{
    const std::string snippet =
        "#include <fstream>\n"
        "void f() { std::ofstream out(\"x\"); }\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.cc", snippet),
                      "statsched-raw-file-io"));
}

TEST(Lint, RawFileIoIgnoresSinkLayerCalls)
{
    // base::io qualified names contain the banned stems as prefixes
    // (readFileBytes, truncateFile, renameFile) — none may fire.
    const std::string snippet =
        "#include \"base/io.hh\"\n"
        "void f(statsched::base::io::Sink &sink) {\n"
        "    std::vector<std::uint8_t> bytes;\n"
        "    base::io::readFileBytes(\"x\", bytes);\n"
        "    base::io::truncateFile(\"x\", 4);\n"
        "    base::io::renameFile(\"x\", \"y\");\n"
        "    base::io::removeFile(\"x\");\n"
        "    sink.write(bytes.data(), bytes.size());\n"
        "    sink.sync();\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.cc", snippet),
                       "statsched-raw-file-io"));
}

TEST(Lint, RawFileIoSuppressibleWithReason)
{
    const std::string snippet =
        "#include <unistd.h>\n"
        "void f(int fd) { ::fsync(fd); }"
        " // NOLINT(statsched-raw-file-io): borrowed fd owned by the"
        " caller's sink\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.cc", snippet),
                       "statsched-raw-file-io"));
}

TEST(Lint, NoRawProcessSuppressibleWithReason)
{
    const std::string snippet =
        "#include <cstdlib>\n"
        "int f() { return std::system(\"stty sane\"); }"
        " // NOLINT(statsched-no-raw-process): terminal reset, no"
        " child to manage\n";
    EXPECT_TRUE(firedRules("tools/runner.cc", snippet).empty());
}

TEST(Lint, NoRawProcessIgnoresLookalikes)
{
    // A local named `pipe` being constructed is not the pipe(2)
    // syscall, and system_clock is not system(3).
    const std::string snippet =
        "#include \"net/pipeline.hh\"\n"
        "void f() {\n"
        "    Pipeline pipe({}, kernel());\n"
        "    auto t = std::chrono::system_clock::now();\n"
        "    (void)t;\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("tests/net/test_foo.cc", snippet),
                       "statsched-no-raw-process"));
}

TEST(Lint, NolintInsideStringLiteralIsInert)
{
    // Directive-shaped text in a string literal (such as this very
    // test file's fixtures) neither suppresses rules nor trips the
    // reason check.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "const char *kDoc = \"// NOLINT(statsched-ambient-rng)\";"
        " int g() { return rand(); }\n";
    const auto rules = firedRules("src/core/foo.cc", snippet);
    EXPECT_TRUE(fired(rules, "statsched-ambient-rng"));
    EXPECT_FALSE(fired(rules, "statsched-nolint-reason"));
}

TEST(Lint, SimHotAllocFiresOnMapAndVectorAndNew)
{
    const std::string snippet =
        "#include \"sim/contention.hh\"\n"
        "void f() {\n"
        "    std::map<int, double> shared;\n"
        "    std::vector<double> demand(n, 0.0);\n"
        "    auto *p = new double[8];\n"
        "}\n";
    const auto rules = firedRules("src/sim/contention.cc", snippet);
    EXPECT_EQ(3, std::count(rules.begin(), rules.end(),
                            std::string("statsched-sim-hot-alloc")));
}

TEST(Lint, SimHotAllocSuppressibleWithReason)
{
    const std::string snippet =
        "#include \"sim/contention.hh\"\n"
        "std::vector<core::TaskId> all(n);"
        " // NOLINT(statsched-sim-hot-alloc): construction time\n";
    EXPECT_TRUE(firedRules("src/sim/contention.cc", snippet).empty());
}

TEST(Lint, SimHotAllocScopedToSolverAndEngineOnly)
{
    // The same allocation is legal in the frozen reference solver,
    // in the rest of src/sim and elsewhere in the library: the rule
    // polices only the production hot path.
    const std::string map_line = "std::map<int, double> shared;\n";
    for (const char *path :
         {"src/sim/reference_solver.cc", "src/sim/cycle_sim.cc",
          "src/core/assignment.cc", "src/stats/ecdf.cc"}) {
        EXPECT_FALSE(fired(firedRules(path,
                                      "#include \"x/y.hh\"\n" +
                                          std::string(map_line)),
                           "statsched-sim-hot-alloc"))
            << path;
    }
}

TEST(Lint, SimHotAllocIgnoresDeferredDeclarations)
{
    // A default-constructed vector allocates nothing by itself; the
    // rule targets constructions that allocate on the spot.
    const std::string snippet =
        "#include \"sim/engine.hh\"\n"
        "struct Scratch { std::vector<double> demand; };\n";
    EXPECT_TRUE(firedRules("src/sim/engine.cc", snippet).empty());
}

TEST(Lint, RawSyncPrimitiveFiresEverywhere)
{
    // The std synchronization vocabulary is banned outside
    // src/base/sync.hh — in tests and tools too, so every lock in
    // the tree is visible to the lock-order checker.
    const std::string snippet =
        "#include <mutex>\n"
        "#include <condition_variable>\n"
        "void f() {\n"
        "    std::mutex m;\n"
        "    std::condition_variable cv;\n"
        "    std::lock_guard<std::mutex> lock(m);\n"
        "}\n";
    for (const char *path :
         {"src/core/foo.cc", "tools/runner.cc",
          "tests/core/test_foo.cc", "bench/bench_foo.cc"}) {
        const auto rules = firedRules(path, snippet);
        // Two banned includes, four std:: sync mentions.
        EXPECT_EQ(6, std::count(
                         rules.begin(), rules.end(),
                         std::string("statsched-raw-sync-primitive")))
            << path;
    }
}

TEST(Lint, RawSyncPrimitiveExemptInSyncHeader)
{
    const std::string snippet =
        "#include <condition_variable>\n"
        "#include <mutex>\n"
        "class Mutex { std::mutex m_; };\n";
    EXPECT_FALSE(fired(firedRules("src/base/sync.hh", snippet),
                       "statsched-raw-sync-primitive"));
}

TEST(Lint, RawSyncPrimitiveFiresAcrossLineBreaks)
{
    // A declaration split over lines defeats any per-line regex; the
    // token stream sees one `std :: mutex` sequence regardless.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "class Foo {\n"
        "    std::\n"
        "        mutex guard_;\n"
        "};\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.cc", snippet),
                      "statsched-raw-sync-primitive"));
}

TEST(Lint, RawSyncPrimitiveSuppressibleWithReason)
{
    const std::string snippet =
        "#include \"base/foo.hh\"\n"
        "std::mutex m;"
        " // NOLINT(statsched-raw-sync-primitive): bootstrap before"
        " base::Mutex exists\n";
    EXPECT_TRUE(firedRules("src/base/foo.cc", snippet).empty());
}

TEST(Lint, DetachedThreadFiresOutsideHw)
{
    const std::string snippet =
        "#include <thread>\n"
        "void f() {\n"
        "    std::thread worker([] {});\n"
        "    worker.detach();\n"
        "}\n";
    for (const char *path :
         {"src/core/foo.cc", "tools/runner.cc",
          "tests/core/test_foo.cc"}) {
        EXPECT_TRUE(fired(firedRules(path, snippet),
                          "statsched-detached-thread"))
            << path;
    }
}

TEST(Lint, DetachedThreadAllowedInHwWatchdog)
{
    const std::string snippet =
        "#include \"hw/foo.hh\"\n"
        "#include <thread>\n"
        "void f(std::thread &t) { t.detach(); }\n";
    EXPECT_FALSE(fired(firedRules("src/hw/foo.cc", snippet),
                       "statsched-detached-thread"));
}

TEST(Lint, UnguardedMemberFiresInMutexOwningClass)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include \"base/sync.hh\"\n"
        "class Cache {\n"
        "  private:\n"
        "    base::Mutex mutex_{\"core::Cache::mutex_\"};\n"
        "    double total_ = 0.0;\n"
        "    std::vector<int> entries_;\n"
        "};\n";
    const auto rules = firedRules("src/core/foo.hh", snippet);
    EXPECT_EQ(2, std::count(rules.begin(), rules.end(),
                            std::string("statsched-unguarded-member")));
}

TEST(Lint, UnguardedMemberCleanWhenProtected)
{
    // Every protection story the rule recognizes: the lock itself,
    // annotated members (any top-level parenthesized group, which
    // SCHED_GUARDED_BY is), atomics, const, references/pointers
    // (SCHED_PT_GUARDED_BY territory) and statics.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include \"base/sync.hh\"\n"
        "class Cache {\n"
        "    base::Mutex mutex_{\"m\"};\n"
        "    base::CondVar ready_;\n"
        "    std::uint64_t hits_ SCHED_GUARDED_BY(mutex_) = 0;\n"
        "    std::map<int, int> deep_\n"
        "        SCHED_GUARDED_BY(mutex_);\n"
        "    std::atomic<std::uint64_t> misses_{0};\n"
        "    const std::size_t capacity_ = 8;\n"
        "    Engine &inner_;\n"
        "    static int instances_;\n"
        "};\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.hh", snippet),
                       "statsched-unguarded-member"));
}

TEST(Lint, UnguardedMemberIgnoresClassesWithoutAMutex)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "class Plain {\n"
        "    double total_ = 0.0;\n"
        "    std::vector<int> entries_;\n"
        "};\n";
    EXPECT_FALSE(fired(firedRules("src/core/foo.hh", snippet),
                       "statsched-unguarded-member"));
}

TEST(Lint, UnguardedMemberScopesToTheOwningClassOnly)
{
    // The nested worker struct owns no lock; its members are free.
    // The outer class owns one; its unguarded member is not.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include \"base/sync.hh\"\n"
        "class Pool {\n"
        "    struct Job {\n"
        "        std::size_t n = 0;\n"
        "        double result = 0.0;\n"
        "    };\n"
        "    base::Mutex mutex_{\"m\"};\n"
        "    double pending_ = 0.0;\n"
        "};\n";
    const auto rules = firedRules("src/core/foo.hh", snippet);
    EXPECT_EQ(1, std::count(rules.begin(), rules.end(),
                            std::string("statsched-unguarded-member")));
}

TEST(Lint, UnguardedMemberSuppressibleWithReason)
{
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "#include \"base/sync.hh\"\n"
        "class Pool {\n"
        "    base::Mutex mutex_{\"m\"};\n"
        "    std::vector<std::thread> workers_;"
        " // NOLINT(statsched-unguarded-member): written before"
        " sharing, joined after\n"
        "};\n";
    const auto rules = firedRules("src/core/foo.hh", snippet);
    EXPECT_FALSE(fired(rules, "statsched-unguarded-member"));
    EXPECT_FALSE(fired(rules, "statsched-nolint-reason"));
}

TEST(Lint, FloatReductionOrderFiresInKernelFactory)
{
    // The lambda a parallelKernel() factory returns runs on every
    // pool thread; accumulating into the captured object races and
    // reorders floating-point addition.
    const std::string snippet =
        "#include \"core/foo.hh\"\n"
        "BatchKernel Foo::parallelKernel(std::size_t n) {\n"
        "    return [this](const Assignment &a, std::size_t i) {\n"
        "        total_ += evaluate(a, i);\n"
        "        return total_;\n"
        "    };\n"
        "}\n";
    EXPECT_TRUE(fired(firedRules("src/core/foo.cc", snippet),
                      "statsched-float-reduction-order"));
}

TEST(Lint, FloatReductionOrderFiresInWorkerPoolTask)
{
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "double f(base::WorkerPool &pool, std::size_t n) {\n"
        "    double total = 0.0;\n"
        "    pool.run(n, 1, [&](std::size_t b, std::size_t e) {\n"
        "        total += work(b, e);\n"
        "    });\n"
        "    return total;\n"
        "}\n";
    EXPECT_TRUE(fired(firedRules("src/stats/foo.cc", snippet),
                      "statsched-float-reduction-order"));
}

TEST(Lint, FloatReductionOrderCleanOnIndexedSlots)
{
    // The repo convention: per-index slots, merged after the join.
    // Indexed writes and locals declared inside the lambda are both
    // order-free.
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "void f(base::WorkerPool &pool, std::span<double> out) {\n"
        "    pool.run(out.size(), 1,\n"
        "             [&](std::size_t b, std::size_t e) {\n"
        "        for (std::size_t i = b; i < e; ++i) {\n"
        "            double acc = 0.0;\n"
        "            acc += work(i);\n"
        "            out[i] += acc;\n"
        "        }\n"
        "    });\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/stats/foo.cc", snippet),
                       "statsched-float-reduction-order"));
}

TEST(Lint, FloatReductionOrderIgnoresSequentialCode)
{
    // Outside kernel factories and pool.run() arguments, compound
    // accumulation is ordinary sequential code.
    const std::string snippet =
        "#include \"stats/foo.hh\"\n"
        "double f(std::span<const double> xs) {\n"
        "    double total = 0.0;\n"
        "    for (const double x : xs)\n"
        "        total += x;\n"
        "    return total;\n"
        "}\n";
    EXPECT_FALSE(fired(firedRules("src/stats/foo.cc", snippet),
                       "statsched-float-reduction-order"));
}

/**
 * The real tree must be clean: every convention the linter enforces
 * is a convention the code actually follows. STATSCHED_SOURCE_DIR is
 * injected by the build so the test finds the tree from any ctest
 * working directory.
 */
TEST(Lint, SourceTreeIsClean)
{
    const auto findings = lintTree(STATSCHED_SOURCE_DIR);
    for (const Finding &finding : findings)
        ADD_FAILURE() << finding.format();
    EXPECT_TRUE(findings.empty());
}

} // anonymous namespace
