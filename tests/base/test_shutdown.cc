/**
 * @file
 * Graceful-shutdown tests: sigaction installation without SA_RESTART,
 * first-signal drain, second-signal hard exit, mixed-kind escalation.
 * Signal delivery runs inside gtest death-test children so the test
 * process itself never changes disposition.
 */

#include <gtest/gtest.h>

#include <csignal>

#include <unistd.h>

#include "base/shutdown.hh"

namespace
{

using namespace statsched;

TEST(Shutdown, ManualRequestAndResetRoundTrip)
{
    base::resetShutdown();
    EXPECT_FALSE(base::shutdownRequested());
    base::requestShutdown();
    EXPECT_TRUE(base::shutdownRequested());
    base::resetShutdown();
    EXPECT_FALSE(base::shutdownRequested());
}

TEST(Shutdown, HandlersInstalledWithoutSaRestart)
{
    // The EINTR discipline of the whole tree rides on this flag: a
    // coordinator blocked in a pipe read must observe Ctrl-C as an
    // interrupted syscall, not sleep through it (SA_RESTART).
    base::installShutdownHandlers();
    for (const int sig : {SIGINT, SIGTERM}) {
        struct sigaction installed = {};
        ASSERT_EQ(sigaction(sig, nullptr, &installed), 0);
        EXPECT_EQ(installed.sa_handler,
                  &base::detail::shutdownSignalHandler)
            << "signal " << sig;
        EXPECT_EQ(installed.sa_flags & SA_RESTART, 0)
            << "signal " << sig;
    }
}

TEST(ShutdownDeathTest, FirstSignalSetsTheFlagAndProcessSurvives)
{
    EXPECT_EXIT(
        {
            base::resetShutdown();
            base::installShutdownHandlers();
            std::raise(SIGTERM);
            _exit(base::shutdownRequested() ? 0 : 1);
        },
        ::testing::ExitedWithCode(0), "");
}

TEST(ShutdownDeathTest, SecondSignalOfAKindHardExits)
{
    // An operator whose drain is stuck never needs SIGKILL: the
    // second signal restores the default disposition and re-raises,
    // so the process dies with the conventional signal status.
    EXPECT_EXIT(
        {
            base::resetShutdown();
            base::installShutdownHandlers();
            std::raise(SIGTERM);
            std::raise(SIGTERM);
            _exit(0); // never reached
        },
        ::testing::KilledBySignal(SIGTERM), "");

    EXPECT_EXIT(
        {
            base::resetShutdown();
            base::installShutdownHandlers();
            std::raise(SIGINT);
            std::raise(SIGINT);
            _exit(0); // never reached
        },
        ::testing::KilledBySignal(SIGINT), "");
}

TEST(ShutdownDeathTest, MixedSignalKindsKeepDraining)
{
    // SIGINT then SIGTERM is one operator pressing Ctrl-C and one
    // orchestrator sending a polite stop — both first of their kind,
    // so the drain continues until either kind repeats.
    EXPECT_EXIT(
        {
            base::resetShutdown();
            base::installShutdownHandlers();
            std::raise(SIGINT);
            std::raise(SIGTERM);
            _exit(base::shutdownRequested() ? 0 : 1);
        },
        ::testing::ExitedWithCode(0), "");
}

} // anonymous namespace
