/**
 * @file
 * OptionParser tests, including the failure modes the old ad-hoc
 * argument scanner got wrong (silently dropped trailing token,
 * accepted unknown options).
 */

#include <gtest/gtest.h>

#include <array>

#include "base/cli.hh"

namespace
{

using statsched::base::OptionParser;

/** argv builder: parse("estimate", "--samples", "50") etc. */
template <typename... Tokens>
bool
parseTokens(OptionParser &parser, Tokens... tokens)
{
    std::array<const char *, sizeof...(Tokens) + 2> argv{
        "statsched_cli", "cmd", tokens...};
    return parser.parse(static_cast<int>(argv.size()),
                        const_cast<char **>(argv.data()), 2);
}

OptionParser
makeParser()
{
    OptionParser parser;
    parser.addOption("samples", "2000", "sample size");
    parser.addOption("loss", "2.5", "acceptable loss");
    parser.addOption("benchmark", "ipfwd-l1", "workload");
    parser.addFlag("no-memoize", "disable the cache");
    return parser;
}

TEST(OptionParser, DefaultsApplyWhenAbsent)
{
    OptionParser parser = makeParser();
    ASSERT_TRUE(parseTokens(parser));
    EXPECT_EQ(parser.getInt("samples"), 2000);
    EXPECT_DOUBLE_EQ(parser.getDouble("loss"), 2.5);
    EXPECT_EQ(parser.get("benchmark"), "ipfwd-l1");
    EXPECT_FALSE(parser.flag("no-memoize"));
    EXPECT_FALSE(parser.given("samples"));
}

TEST(OptionParser, ParsesSpaceAndEqualsSyntax)
{
    OptionParser parser = makeParser();
    ASSERT_TRUE(parseTokens(parser, "--samples", "512",
                            "--loss=1.25", "--benchmark=aho"));
    EXPECT_EQ(parser.getInt("samples"), 512);
    EXPECT_DOUBLE_EQ(parser.getDouble("loss"), 1.25);
    EXPECT_EQ(parser.get("benchmark"), "aho");
    EXPECT_TRUE(parser.given("samples"));
}

TEST(OptionParser, FlagsConsumeNoValue)
{
    OptionParser parser = makeParser();
    // "--no-memoize" sits between an option and its value; it must
    // not swallow "--samples"'s argument.
    ASSERT_TRUE(parseTokens(parser, "--no-memoize", "--samples",
                            "64"));
    EXPECT_TRUE(parser.flag("no-memoize"));
    EXPECT_EQ(parser.getInt("samples"), 64);
}

TEST(OptionParser, FlagAcceptsExplicitBoolean)
{
    OptionParser parser = makeParser();
    ASSERT_TRUE(parseTokens(parser, "--no-memoize=0"));
    EXPECT_FALSE(parser.flag("no-memoize"));

    OptionParser again = makeParser();
    ASSERT_TRUE(parseTokens(again, "--no-memoize=1"));
    EXPECT_TRUE(again.flag("no-memoize"));
}

TEST(OptionParser, RejectsUnknownOption)
{
    OptionParser parser = makeParser();
    EXPECT_FALSE(parseTokens(parser, "--bogus", "3"));
    EXPECT_NE(parser.error().find("unknown option"),
              std::string::npos);
    EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(OptionParser, RejectsTrailingOptionWithoutValue)
{
    // The old parser's `i + 1 < argc` loop silently ignored this.
    OptionParser parser = makeParser();
    EXPECT_FALSE(parseTokens(parser, "--samples"));
    EXPECT_NE(parser.error().find("missing value"),
              std::string::npos);
}

TEST(OptionParser, RejectsEmptyValue)
{
    // "--samples=" would otherwise parse as 0 and blow up far from
    // the command line (e.g. an empty sample in the estimator).
    OptionParser parser = makeParser();
    EXPECT_FALSE(parseTokens(parser, "--samples="));
    EXPECT_NE(parser.error().find("empty value"), std::string::npos);

    OptionParser spaced = makeParser();
    EXPECT_FALSE(parseTokens(spaced, "--samples", ""));
    EXPECT_NE(spaced.error().find("empty value"), std::string::npos);
}

TEST(OptionParser, RejectsBarePositionalToken)
{
    OptionParser parser = makeParser();
    EXPECT_FALSE(parseTokens(parser, "samples", "3"));
    EXPECT_NE(parser.error().find("expected --option"),
              std::string::npos);
}

TEST(OptionParser, LastOccurrenceWins)
{
    OptionParser parser = makeParser();
    ASSERT_TRUE(parseTokens(parser, "--samples", "10",
                            "--samples=20"));
    EXPECT_EQ(parser.getInt("samples"), 20);
}

TEST(OptionParser, UsageListsDeclaredOptions)
{
    const OptionParser parser = makeParser();
    const std::string usage = parser.usage();
    EXPECT_NE(usage.find("--samples"), std::string::npos);
    EXPECT_NE(usage.find("--no-memoize"), std::string::npos);
    EXPECT_NE(usage.find("sample size"), std::string::npos);
}

} // anonymous namespace
