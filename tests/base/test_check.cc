/**
 * @file
 * Tests for the base/check.hh contract layer at the default level
 * (1, check-and-report): violations throw ContractViolation with the
 * contract kind, condition text and source location attached.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "base/check.hh"

namespace
{

using statsched::contractKindName;
using statsched::ContractKind;
using statsched::ContractViolation;

static_assert(STATSCHED_CHECK_LEVEL == 1,
              "these tests exercise the default check-and-report "
              "level");

TEST(Check, PassingContractsAreSilent)
{
    EXPECT_NO_THROW({
        SCHED_REQUIRE(1 + 1 == 2, "arithmetic works");
        SCHED_ENSURE(true, "trivially true");
        SCHED_INVARIANT(42 > 0, "positive");
    });
}

TEST(Check, RequireViolationThrowsWithKind)
{
    try {
        SCHED_REQUIRE(2 + 2 == 5, "arithmetic is broken");
        FAIL() << "expected ContractViolation";
    } catch (const ContractViolation &violation) {
        EXPECT_EQ(ContractKind::Require, violation.kind());
        EXPECT_EQ("arithmetic is broken", violation.message());
        EXPECT_EQ(std::string("2 + 2 == 5"),
                  violation.condition());
        EXPECT_NE(nullptr, violation.file());
        EXPECT_GT(violation.line(), 0);
    }
}

TEST(Check, EnsureAndInvariantCarryTheirKinds)
{
    try {
        SCHED_ENSURE(false, "postcondition");
        FAIL();
    } catch (const ContractViolation &violation) {
        EXPECT_EQ(ContractKind::Ensure, violation.kind());
    }
    try {
        SCHED_INVARIANT(false, "consistency");
        FAIL();
    } catch (const ContractViolation &violation) {
        EXPECT_EQ(ContractKind::Invariant, violation.kind());
    }
}

TEST(Check, UnreachableThrows)
{
    try {
        SCHED_UNREACHABLE("must not get here");
        FAIL();
    } catch (const ContractViolation &violation) {
        EXPECT_EQ(ContractKind::Unreachable, violation.kind());
    }
}

TEST(Check, ViolationIsALogicError)
{
    // Callers that cannot name ContractViolation still catch the
    // standard hierarchy.
    EXPECT_THROW(SCHED_REQUIRE(false, "structured"),
                 std::logic_error);
}

TEST(Check, WhatContainsKindMessageConditionAndLocation)
{
    try {
        SCHED_REQUIRE(1 > 2, "ordering is broken");
        FAIL();
    } catch (const ContractViolation &violation) {
        const std::string what = violation.what();
        EXPECT_NE(std::string::npos, what.find("REQUIRE"));
        EXPECT_NE(std::string::npos, what.find("ordering is broken"));
        EXPECT_NE(std::string::npos, what.find("1 > 2"));
        EXPECT_NE(std::string::npos, what.find("test_check.cc"));
    }
}

TEST(Check, ConditionIsEvaluatedExactlyOnce)
{
    int evaluations = 0;
    SCHED_REQUIRE(++evaluations > 0, "side effect counted");
    EXPECT_EQ(1, evaluations);
}

TEST(Check, KindNamesAreStable)
{
    EXPECT_STREQ("REQUIRE",
                 contractKindName(ContractKind::Require));
    EXPECT_STREQ("ENSURE", contractKindName(ContractKind::Ensure));
    EXPECT_STREQ("INVARIANT",
                 contractKindName(ContractKind::Invariant));
    EXPECT_STREQ("UNREACHABLE",
                 contractKindName(ContractKind::Unreachable));
}

} // anonymous namespace
