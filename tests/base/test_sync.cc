/**
 * @file
 * Tests for the base/sync.hh capability layer: wrapper semantics
 * under real contention (the TSan CI job runs this suite), the
 * timeout paths, and the lock-order checker's cycle and recursion
 * diagnostics.
 *
 * The deliberately-wrong acquisition orders live in helpers marked
 * SCHED_NO_THREAD_SAFETY_ANALYSIS: the runtime checker is the subject
 * under test here, and the compile-time analysis would (correctly)
 * reject the double-lock shapes it can see through.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "base/check.hh"
#include "base/sync.hh"

namespace
{

using statsched::base::CondVar;
using statsched::base::Mutex;
using statsched::base::MutexLock;

/** Shared state for the contention tests, annotated the same way
 *  production classes are so Clang's analysis covers the test too. */
struct Counter
{
    Mutex mutex{"test::Counter::mutex"};
    std::uint64_t value SCHED_GUARDED_BY(mutex) = 0;
    CondVar changed;
};

TEST(Sync, MutexLockSerializesConcurrentIncrements)
{
    Counter counter;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 2000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kIncrements; ++i) {
                MutexLock lock(counter.mutex);
                ++counter.value;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    MutexLock lock(counter.mutex);
    EXPECT_EQ(static_cast<std::uint64_t>(kThreads) * kIncrements,
              counter.value);
}

TEST(Sync, CondVarHandshakeDeliversValue)
{
    // The predicate-free wait convention from sync.hh: the condition
    // is re-checked in a caller-side while loop under the lock.
    Counter counter;
    std::thread producer([&counter] {
        MutexLock lock(counter.mutex);
        counter.value = 42;
        counter.changed.notifyAll();
    });

    {
        MutexLock lock(counter.mutex);
        while (counter.value == 0)
            counter.changed.wait(counter.mutex);
        EXPECT_EQ(42u, counter.value);
    }
    producer.join();
}

TEST(Sync, CondVarWaitForTimesOutWithoutNotification)
{
    Counter counter;
    MutexLock lock(counter.mutex);
    EXPECT_EQ(std::cv_status::timeout,
              counter.changed.waitFor(counter.mutex,
                                      std::chrono::milliseconds(1)));
}

TEST(Sync, CondVarWaitUntilHonorsAnExpiredDeadline)
{
    Counter counter;
    MutexLock lock(counter.mutex);
    EXPECT_EQ(std::cv_status::timeout,
              counter.changed.waitUntil(
                  counter.mutex, std::chrono::steady_clock::now()));
}

TEST(Sync, MutexReportsItsDiagnosticName)
{
    Mutex named("core::Example::mutex_");
    EXPECT_STREQ("core::Example::mutex_", named.name());
    Mutex anonymous;
    EXPECT_STREQ("base::Mutex", anonymous.name());
}

#if STATSCHED_CHECK_LEVEL == 1

// The checker throws at level 1 (it traps at level 2, and at level 0
// the bookkeeping does not exist), so only level-1 builds can observe
// the diagnostics from inside the process.

/** Acquires `first` then `second`, recording one order edge. Marked
 *  no-analysis: the second lock is taken while the first is held by
 *  design, which is exactly what the runtime checker inspects. */
void
acquireInOrder(Mutex &first, Mutex &second)
    SCHED_NO_THREAD_SAFETY_ANALYSIS
{
    MutexLock outer(first);
    MutexLock inner(second);
}

TEST(Sync, LockOrderInversionThrowsNamingBothLocks)
{
    Mutex a("sync-test-order-a");
    Mutex b("sync-test-order-b");
    acquireInOrder(a, b); // records a -> b

    try {
        acquireInOrder(b, a); // would record b -> a: a cycle
        ADD_FAILURE() << "inverted acquisition was not refused";
    } catch (const statsched::ContractViolation &violation) {
        const std::string what = violation.what();
        EXPECT_NE(std::string::npos, what.find("sync-test-order-a"))
            << what;
        EXPECT_NE(std::string::npos, what.find("sync-test-order-b"))
            << what;
        EXPECT_NE(std::string::npos,
                  what.find("lock-order inversion"))
            << what;
    }
}

TEST(Sync, LockOrderInversionLeavesBothLocksReleased)
{
    Mutex a("sync-test-unwind-a");
    Mutex b("sync-test-unwind-b");
    acquireInOrder(a, b);
    EXPECT_THROW(acquireInOrder(b, a),
                 statsched::ContractViolation);

    // The refused acquisition must have unwound cleanly: both locks
    // are free and the recorded a -> b order still works.
    acquireInOrder(a, b);
}

TEST(Sync, ConsistentNestingNeverTrips)
{
    Mutex a("sync-test-consistent-a");
    Mutex b("sync-test-consistent-b");
    for (int i = 0; i < 100; ++i)
        acquireInOrder(a, b);
    { MutexLock lone(b); } // b alone is not an inversion
    acquireInOrder(a, b);
}

TEST(Sync, ThreeLockCycleIsRefusedOnTheClosingEdge)
{
    // a -> b and b -> c are fine individually; c -> a closes the
    // cycle through the transitive order, which a two-lock check
    // would miss.
    Mutex a("sync-test-cycle-a");
    Mutex b("sync-test-cycle-b");
    Mutex c("sync-test-cycle-c");
    acquireInOrder(a, b);
    acquireInOrder(b, c);
    EXPECT_THROW(acquireInOrder(c, a),
                 statsched::ContractViolation);
}

TEST(Sync, RetiredMutexDropsItsOrderConstraints)
{
    // The edges die with the Mutex: a fresh pair is free to pick the
    // opposite order, even if the allocator reuses the storage.
    {
        Mutex a("sync-test-retire-a");
        Mutex b("sync-test-retire-b");
        acquireInOrder(a, b);
    }
    {
        Mutex a("sync-test-retire-a");
        Mutex b("sync-test-retire-b");
        acquireInOrder(b, a);
    }
}

/** Locks `mutex` twice on one thread; no-analysis for the same reason
 *  as acquireInOrder. */
void
acquireRecursively(Mutex &mutex) SCHED_NO_THREAD_SAFETY_ANALYSIS
{
    MutexLock outer(mutex);
    MutexLock inner(mutex);
}

TEST(Sync, RecursiveAcquisitionThrowsInsteadOfDeadlocking)
{
    Mutex mutex("sync-test-recursive");
    try {
        acquireRecursively(mutex);
        ADD_FAILURE() << "recursive acquisition was not refused";
    } catch (const statsched::ContractViolation &violation) {
        const std::string what = violation.what();
        EXPECT_NE(std::string::npos, what.find("sync-test-recursive"))
            << what;
        EXPECT_NE(std::string::npos, what.find("not reentrant"))
            << what;
    }
    // The refusal happened before the second lock; the first was
    // released by unwinding and the mutex is usable again.
    MutexLock lock(mutex);
}

#endif // STATSCHED_CHECK_LEVEL == 1

} // anonymous namespace
