/**
 * @file
 * Subprocess wrapper tests: pipe round-trips, exit-status reporting
 * (including death-by-signal and exec failure), read timeouts, EINTR
 * reporting under the no-SA_RESTART shutdown handlers, and the
 * destructor's leak-proof reaping.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <sys/types.h>

#include "base/shutdown.hh"
#include "base/subprocess.hh"

namespace
{

using statsched::base::Subprocess;
using ReadStatus = Subprocess::ReadStatus;

/** Reads until `n` bytes arrived or a non-Data status shows up. */
std::string
readExactly(Subprocess &process, std::size_t n)
{
    std::string data;
    char buffer[4096];
    while (data.size() < n) {
        const auto result =
            process.read(buffer, sizeof buffer, 2000);
        if (result.status != ReadStatus::Data)
            break;
        data.append(buffer, result.bytes);
    }
    return data;
}

TEST(Subprocess, EchoRoundTripAndCleanExit)
{
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"cat"}, error)) << error;
    EXPECT_TRUE(process.running());
    EXPECT_GT(process.pid(), 0);

    const std::string message = "hello across the pipe";
    ASSERT_TRUE(process.writeAll(message.data(), message.size()));
    EXPECT_EQ(readExactly(process, message.size()), message);

    // EOF on stdin stops cat; its stdout then reports Eof.
    process.closeStdin();
    char buffer[64];
    Subprocess::ReadResult result;
    do {
        result = process.read(buffer, sizeof buffer, 2000);
    } while (result.status == ReadStatus::Data);
    EXPECT_EQ(result.status, ReadStatus::Eof);
    EXPECT_EQ(process.wait(), 0);
    EXPECT_FALSE(process.running());
}

TEST(Subprocess, ExitCodeIsReported)
{
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"sh", "-c", "exit 7"}, error))
        << error;
    EXPECT_EQ(process.wait(), 7);
    // wait() is idempotent.
    EXPECT_EQ(process.wait(), 7);
}

TEST(Subprocess, KillReportsDeathBySignal)
{
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;
    process.kill();
    EXPECT_EQ(process.wait(), 128 + SIGKILL);
}

TEST(Subprocess, ExecFailureReportsShellConvention127)
{
    Subprocess process;
    std::string error;
    // fork/exec pattern: the spawn succeeds, the exec fails in the
    // child, which exits 127 (the shell's command-not-found code).
    ASSERT_TRUE(process.spawn(
        {"statsched-no-such-binary-exists"}, error));
    char buffer[16];
    Subprocess::ReadResult result;
    do {
        result = process.read(buffer, sizeof buffer, 2000);
    } while (result.status == ReadStatus::Data);
    EXPECT_EQ(result.status, ReadStatus::Eof);
    EXPECT_EQ(process.wait(), 127);
}

TEST(Subprocess, SpawnRejectsEmptyArgvAndDoubleSpawn)
{
    Subprocess process;
    std::string error;
    EXPECT_FALSE(process.spawn({}, error));
    EXPECT_FALSE(error.empty());

    ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;
    EXPECT_FALSE(process.spawn({"cat"}, error));
    process.kill();
    process.wait();
}

TEST(Subprocess, ReadTimesOutOnASilentChild)
{
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;
    char buffer[16];
    const auto result = process.read(buffer, sizeof buffer, 50);
    EXPECT_EQ(result.status, ReadStatus::Timeout);
    EXPECT_TRUE(process.running());
    process.kill();
    EXPECT_EQ(process.wait(), 128 + SIGKILL);
}

TEST(Subprocess, ReadReportsInterruptedWhenAShutdownSignalLands)
{
    // The whole point of installing the handlers without SA_RESTART:
    // a blocking read on a silent worker observes Ctrl-C as an
    // Interrupted result instead of sleeping through it.
    statsched::base::resetShutdown();
    statsched::base::installShutdownHandlers();

    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;

    const pthread_t reader = pthread_self();
    std::thread interrupter([reader] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        pthread_kill(reader, SIGINT);
    });
    char buffer[16];
    const auto result = process.read(buffer, sizeof buffer, 10000);
    interrupter.join();

    EXPECT_EQ(result.status, ReadStatus::Interrupted);
    EXPECT_TRUE(statsched::base::shutdownRequested());
    statsched::base::resetShutdown();
    process.kill();
    process.wait();
}

TEST(Subprocess, BoundedWriteFailsInsteadOfWedgingOnAFrozenChild)
{
    // A child that never reads its stdin: once the pipe buffer
    // fills, the unbounded writeAll() would block forever. The
    // stall-bounded overload must give up instead — this is the
    // coordinator-side defense against a SIGSTOPped shard worker.
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;

    const std::vector<char> payload(4 << 20, 'x'); // >> pipe buffer
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(
        process.writeAll(payload.data(), payload.size(), 200));
    const auto elapsed = std::chrono::duration_cast<
        std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    // One stall window (plus scheduling slack), not the 30 s nap.
    EXPECT_LT(elapsed.count(), 5000);
    EXPECT_TRUE(process.running());
    process.kill();
    EXPECT_EQ(process.wait(), 128 + SIGKILL);
}

TEST(Subprocess, BoundedWriteDeliversEverythingToALiveReader)
{
    Subprocess process;
    std::string error;
    ASSERT_TRUE(process.spawn({"cat"}, error)) << error;

    // Larger than the pipe buffer, so the write must interleave
    // with the child's drain — progress keeps resetting the stall
    // budget and every byte arrives.
    std::string payload(1 << 20, '.');
    for (std::size_t i = 0; i < payload.size(); i += 4096)
        payload[i] = static_cast<char>('a' + (i / 4096) % 26);

    std::string echoed;
    std::thread writer([&process, &payload] {
        EXPECT_TRUE(process.writeAll(payload.data(), payload.size(),
                                     2000));
        process.closeStdin();
    });
    echoed = readExactly(process, payload.size());
    writer.join();

    EXPECT_EQ(echoed, payload);
    EXPECT_EQ(process.wait(), 0);
}

TEST(Subprocess, DestructorKillsAndReapsARunningChild)
{
    pid_t pid = -1;
    {
        Subprocess process;
        std::string error;
        ASSERT_TRUE(process.spawn({"sleep", "30"}, error)) << error;
        pid = process.pid();
        ASSERT_GT(pid, 0);
    }
    // The child is gone — killed AND reaped (a zombie would still
    // answer signal 0).
    errno = 0;
    EXPECT_EQ(::kill(pid, 0), -1);
    EXPECT_EQ(errno, ESRCH);
}

TEST(Subprocess, MoveTransfersOwnership)
{
    Subprocess a;
    std::string error;
    ASSERT_TRUE(a.spawn({"cat"}, error)) << error;
    const pid_t pid = a.pid();

    Subprocess b(std::move(a));
    EXPECT_FALSE(a.running());
    EXPECT_TRUE(b.running());
    EXPECT_EQ(b.pid(), pid);

    const std::string message = "moved";
    ASSERT_TRUE(b.writeAll(message.data(), message.size()));
    EXPECT_EQ(readExactly(b, message.size()), message);
    b.kill();
    b.wait();
}

} // anonymous namespace
