/**
 * @file
 * base::io sink-layer tests: checked FileSink writes, the in-memory
 * capture sink, and — the part the journal fault suite leans on — the
 * deterministic FaultInjectingSink, which must split the write that
 * crosses its byte budget at the exact boundary and keep the budget
 * cumulative across rotated sinks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "base/io.hh"

namespace
{

using namespace statsched::base::io;

/** RAII temp file path; removes the file on scope exit. */
class TempPath
{
  public:
    explicit TempPath(const char *stem)
        : path_((std::filesystem::temp_directory_path() /
                 (std::string("statsched_io_test_") + stem))
                    .string())
    {
        std::filesystem::remove(path_);
    }

    ~TempPath() { std::filesystem::remove(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(IoResult, ClassifiesFullMediaApartFromOtherErrors)
{
    const IoResult noSpace = IoResult::failure(ENOSPC, "write");
    EXPECT_EQ(noSpace.status, IoStatus::NoSpace);
    EXPECT_FALSE(noSpace.ok());
    EXPECT_FALSE(noSpace.detail.empty());

    const IoResult quota = IoResult::failure(EDQUOT, "write");
    EXPECT_EQ(quota.status, IoStatus::NoSpace);

    const IoResult io = IoResult::failure(EIO, "fsync");
    EXPECT_EQ(io.status, IoStatus::Error);
    EXPECT_EQ(io.error, EIO);

    EXPECT_TRUE(IoResult().ok());
}

TEST(FileSink, WritesAppendAndTruncateReplaces)
{
    TempPath path("file_sink");
    {
        IoResult open;
        auto sink = FileSink::open(path.str(), true, open);
        ASSERT_TRUE(sink) << open.detail;
        const auto hello = bytes("hello ");
        const IoResult w = sink->write(hello.data(), hello.size());
        EXPECT_TRUE(w.ok());
        EXPECT_EQ(w.bytesWritten, hello.size());
        EXPECT_TRUE(sink->sync().ok());
    }
    {
        // Reopen without truncation: bytes append after the prefix.
        IoResult open;
        auto sink = FileSink::open(path.str(), false, open);
        ASSERT_TRUE(sink) << open.detail;
        const auto world = bytes("world");
        EXPECT_TRUE(sink->write(world.data(), world.size()).ok());
    }
    std::vector<std::uint8_t> all;
    ASSERT_TRUE(readFileBytes(path.str(), all).ok());
    EXPECT_EQ(all, bytes("hello world"));

    {
        // Truncating open wipes the previous contents.
        IoResult open;
        auto sink = FileSink::open(path.str(), true, open);
        ASSERT_TRUE(sink) << open.detail;
        const auto fresh = bytes("fresh");
        EXPECT_TRUE(sink->write(fresh.data(), fresh.size()).ok());
    }
    ASSERT_TRUE(readFileBytes(path.str(), all).ok());
    EXPECT_EQ(all, bytes("fresh"));
}

TEST(FileSink, OpenFailureReportsStructuredResult)
{
    IoResult open;
    auto sink = FileSink::open("/nonexistent-dir/statsched-io-test",
                               true, open);
    EXPECT_FALSE(sink);
    EXPECT_FALSE(open.ok());
    EXPECT_FALSE(open.detail.empty());
}

TEST(FileHelpers, ExistsTruncateRemoveRename)
{
    TempPath a("helpers_a");
    TempPath b("helpers_b");
    EXPECT_FALSE(fileExists(a.str()));

    {
        IoResult open;
        auto sink = FileSink::open(a.str(), true, open);
        ASSERT_TRUE(sink) << open.detail;
        const auto payload = bytes("0123456789");
        ASSERT_TRUE(sink->write(payload.data(), payload.size()).ok());
    }
    EXPECT_TRUE(fileExists(a.str()));

    ASSERT_TRUE(truncateFile(a.str(), 4).ok());
    std::vector<std::uint8_t> data;
    ASSERT_TRUE(readFileBytes(a.str(), data).ok());
    EXPECT_EQ(data, bytes("0123"));

    ASSERT_TRUE(renameFile(a.str(), b.str()).ok());
    EXPECT_FALSE(fileExists(a.str()));
    ASSERT_TRUE(readFileBytes(b.str(), data).ok());
    EXPECT_EQ(data, bytes("0123"));

    ASSERT_TRUE(removeFile(b.str()).ok());
    EXPECT_FALSE(fileExists(b.str()));
    // Removing a missing file is not an error.
    EXPECT_TRUE(removeFile(b.str()).ok());

    const IoResult missing = readFileBytes(a.str(), data);
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.error, ENOENT);
    EXPECT_TRUE(data.empty());
}

TEST(MemorySink, CapturesBytesAndCountsOperations)
{
    MemorySink sink;
    const auto one = bytes("one");
    const auto two = bytes("two");
    EXPECT_TRUE(sink.write(one.data(), one.size()).ok());
    EXPECT_TRUE(sink.write(two.data(), two.size()).ok());
    EXPECT_TRUE(sink.sync().ok());
    EXPECT_EQ(sink.data(), bytes("onetwo"));
    EXPECT_EQ(sink.writes(), 2u);
    EXPECT_EQ(sink.syncs(), 1u);
}

TEST(FaultInjectingSink, SplitsTheCrossingWriteAtTheExactBoundary)
{
    auto plan = std::make_shared<FaultPlan>();
    plan->failAfterBytes = 7;
    auto memory = std::make_unique<MemorySink>();
    MemorySink *captured = memory.get();
    FaultInjectingSink sink(std::move(memory), plan);

    const auto first = bytes("0123");
    EXPECT_TRUE(sink.write(first.data(), first.size()).ok());
    EXPECT_TRUE(sink.sync().ok());

    // This write crosses the 7-byte budget: exactly 3 more bytes fit,
    // then NoSpace — a torn record, as on a really-full disk.
    const auto second = bytes("456789");
    const IoResult torn = sink.write(second.data(), second.size());
    EXPECT_EQ(torn.status, IoStatus::NoSpace);
    EXPECT_EQ(torn.bytesWritten, 3u);
    EXPECT_EQ(captured->data(), bytes("0123456"));
    EXPECT_TRUE(plan->triggered);

    // Once triggered, writes AND syncs fail; nothing more lands.
    const auto more = bytes("x");
    EXPECT_EQ(sink.write(more.data(), more.size()).status,
              IoStatus::NoSpace);
    EXPECT_EQ(sink.sync().status, IoStatus::NoSpace);
    EXPECT_EQ(captured->data().size(), 7u);
}

TEST(FaultInjectingSink, BudgetIsCumulativeAcrossSinks)
{
    // A journal that rotates segments opens a new sink per segment;
    // the shared plan must carry the budget across them so the fault
    // fires at the same global byte offset regardless of rotation.
    TempPath seg0("fault_seg0");
    TempPath seg1("fault_seg1");
    auto plan = std::make_shared<FaultPlan>();
    plan->failAfterBytes = 10;
    const SinkFactory factory =
        faultInjectingFileSinkFactory(plan);

    IoResult open;
    auto first = factory(seg0.str(), true, open);
    ASSERT_TRUE(first) << open.detail;
    const auto six = bytes("aaaaaa");
    EXPECT_TRUE(first->write(six.data(), six.size()).ok());

    auto second = factory(seg1.str(), true, open);
    ASSERT_TRUE(second) << open.detail;
    // 6 of 10 budget bytes are spent; only 4 of these 6 fit.
    const auto more = bytes("bbbbbb");
    const IoResult torn = second->write(more.data(), more.size());
    EXPECT_EQ(torn.status, IoStatus::NoSpace);
    EXPECT_EQ(torn.bytesWritten, 4u);

    std::vector<std::uint8_t> data;
    ASSERT_TRUE(readFileBytes(seg1.str(), data).ok());
    EXPECT_EQ(data, bytes("bbbb"));
}

TEST(FaultInjectingSink, ZeroBudgetFailsTheFirstByte)
{
    auto plan = std::make_shared<FaultPlan>();
    plan->failAfterBytes = 0;
    FaultInjectingSink sink(std::make_unique<MemorySink>(), plan);
    const auto payload = bytes("x");
    const IoResult r = sink.write(payload.data(), payload.size());
    EXPECT_EQ(r.status, IoStatus::NoSpace);
    EXPECT_EQ(r.bytesWritten, 0u);
}

} // namespace
