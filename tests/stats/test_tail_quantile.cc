/**
 * @file
 * Tail-quantile estimation tests (the paper's Section 3.2 top-P%
 * performance boundaries, derived from the fitted tail instead of
 * the exhaustive CDF).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/pot.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

/** Bounded population: survival (1 - x/cap)^2 (xi = -0.5). */
std::vector<double>
boundedSample(double cap, int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(cap * (1.0 - std::sqrt(1.0 - rng.uniform())));
    return xs;
}

/** True upper quantile of that population at tail fraction f. */
double
trueQuantile(double cap, double f)
{
    // 1 - F(x) = (1 - x/cap)^2 = f  =>  x = cap (1 - sqrt(f)).
    return cap * (1.0 - std::sqrt(f));
}

TEST(TailQuantile, MatchesTrueQuantiles)
{
    const double cap = 1000.0;
    const auto xs = boundedSample(cap, 8000, 3);
    const auto est = estimateOptimalPerformance(xs);
    ASSERT_TRUE(est.valid);
    for (double f : {0.04, 0.02, 0.01, 0.005, 0.001}) {
        EXPECT_NEAR(est.tailQuantile(f), trueQuantile(cap, f),
                    0.01 * cap) << f;
    }
}

TEST(TailQuantile, MonotoneAndAnchored)
{
    const auto xs = boundedSample(50.0, 5000, 4);
    const auto est = estimateOptimalPerformance(xs);
    ASSERT_TRUE(est.valid);

    // The full tail fraction reproduces the threshold.
    EXPECT_NEAR(est.tailQuantile(est.exceedanceRate), est.threshold,
                1e-9);
    // Smaller fractions give higher boundaries, approaching the UPB.
    double prev = est.threshold;
    for (double f = est.exceedanceRate / 2.0; f > 1e-6; f /= 2.0) {
        const double q = est.tailQuantile(f);
        EXPECT_GT(q, prev);
        EXPECT_LT(q, est.upb * 1.0001);
        prev = q;
    }
}

TEST(TailQuantile, TopOnePercentSpreadLikeFigure3)
{
    // "The performance difference in P% of the best-performing task
    // assignments can be directly determined from the CDF" — here
    // from the fitted tail: spread = (UPB - q(P)) / UPB.
    const auto xs = boundedSample(100.0, 6000, 5);
    const auto est = estimateOptimalPerformance(xs);
    ASSERT_TRUE(est.valid);
    const double spread =
        (est.upb - est.tailQuantile(0.01)) / est.upb;
    // True value: 1 - (1 - sqrt(0.01)) = 0.1.
    EXPECT_NEAR(spread, 0.1, 0.02);
}

TEST(TailQuantile, ExceedanceRateIsRecorded)
{
    const auto xs = boundedSample(10.0, 2000, 6);
    const auto est = estimateOptimalPerformance(xs);
    EXPECT_NEAR(est.exceedanceRate, 0.05, 0.001);
}

} // anonymous namespace
