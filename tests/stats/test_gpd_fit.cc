/**
 * @file
 * GPD parameter estimation tests: recovery on synthetic data for all
 * three estimators (the paper's MLE plus the moment/PWM ablation
 * alternatives).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/gpd.hh"
#include "stats/gpd_fit.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

std::vector<double>
synthetic(double xi, double sigma, int n, std::uint64_t seed)
{
    Rng rng(seed);
    const Gpd gpd(xi, sigma);
    std::vector<double> ys;
    ys.reserve(n);
    for (int i = 0; i < n; ++i) {
        double y = gpd.sampleFromUniform(rng.uniform());
        if (y <= 0.0)
            y = 1e-12;
        ys.push_back(y);
    }
    return ys;
}

/** Parameter grid for recovery tests: (xi, sigma). */
class GpdRecovery
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(GpdRecovery, MaximumLikelihoodRecoversParameters)
{
    const auto [xi, sigma] = GetParam();
    const auto ys = synthetic(xi, sigma, 4000, 42);
    const GpdFit fit = fitGpd(ys, GpdEstimator::MaximumLikelihood);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.xi, xi, 0.08) << "sigma-hat=" << fit.sigma;
    EXPECT_NEAR(fit.sigma, sigma, 0.12 * sigma);
}

TEST_P(GpdRecovery, MethodOfMomentsRecoversParameters)
{
    const auto [xi, sigma] = GetParam();
    // Moments need xi < 1/2 for finite variance; grid satisfies it.
    const auto ys = synthetic(xi, sigma, 4000, 43);
    const GpdFit fit = fitGpd(ys, GpdEstimator::MethodOfMoments);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.xi, xi, 0.12);
    EXPECT_NEAR(fit.sigma, sigma, 0.15 * sigma);
}

TEST_P(GpdRecovery, PwmRecoversParameters)
{
    const auto [xi, sigma] = GetParam();
    const auto ys = synthetic(xi, sigma, 4000, 44);
    const GpdFit fit =
        fitGpd(ys, GpdEstimator::ProbabilityWeightedMoments);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.xi, xi, 0.1);
    EXPECT_NEAR(fit.sigma, sigma, 0.12 * sigma);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, GpdRecovery,
    ::testing::Values(std::make_pair(-0.6, 1.0),
                      std::make_pair(-0.4, 2.0),
                      std::make_pair(-0.25, 0.5),
                      std::make_pair(-0.1, 3.0),
                      std::make_pair(0.2, 1.0)));

TEST(GpdFit, NegativeLogLikelihoodInfeasibleRegions)
{
    const std::vector<double> ys = {0.5, 1.0, 2.0};
    EXPECT_TRUE(std::isinf(gpdNegativeLogLikelihood(-0.1, -1.0, ys)));
    EXPECT_TRUE(std::isinf(gpdNegativeLogLikelihood(-0.1, 0.0, ys)));
    // xi=-1, sigma=1 -> support [0,1] excludes y=2.
    EXPECT_TRUE(std::isinf(gpdNegativeLogLikelihood(-1.0, 1.0, ys)));
    // Feasible point is finite.
    EXPECT_TRUE(std::isfinite(
        gpdNegativeLogLikelihood(-0.1, 2.0, ys)));
}

TEST(GpdFit, MleBeatsOrMatchesOthersInLikelihood)
{
    const auto ys = synthetic(-0.3, 1.0, 1500, 77);
    const GpdFit mle = fitGpd(ys, GpdEstimator::MaximumLikelihood);
    const GpdFit mom = fitGpd(ys, GpdEstimator::MethodOfMoments);
    const GpdFit pwm =
        fitGpd(ys, GpdEstimator::ProbabilityWeightedMoments);
    const double ll_mom =
        -gpdNegativeLogLikelihood(mom.xi, mom.sigma, ys);
    const double ll_pwm =
        -gpdNegativeLogLikelihood(pwm.xi, pwm.sigma, ys);
    EXPECT_GE(mle.logLikelihood, ll_mom - 1e-6);
    EXPECT_GE(mle.logLikelihood, ll_pwm - 1e-6);
}

TEST(GpdFit, ExponentialDataGivesNearZeroShape)
{
    Rng rng(5);
    std::vector<double> ys;
    for (int i = 0; i < 5000; ++i)
        ys.push_back(-2.0 * std::log(1.0 - rng.uniform()));
    const GpdFit fit = fitGpd(ys);
    EXPECT_NEAR(fit.xi, 0.0, 0.06);
    EXPECT_NEAR(fit.sigma, 2.0, 0.15);
}

TEST(GpdFit, UniformDataGivesMinusOneShape)
{
    // Uniform(0, b) is GPD with xi = -1, sigma = b.
    Rng rng(6);
    std::vector<double> ys;
    for (int i = 0; i < 5000; ++i)
        ys.push_back(3.0 * rng.uniform() + 1e-9);
    const GpdFit fit = fitGpd(ys);
    EXPECT_NEAR(fit.xi, -1.0, 0.1);
    EXPECT_NEAR(fit.sigma, 3.0, 0.3);
}

TEST(GpdFit, SmallSampleStillConverges)
{
    const auto ys = synthetic(-0.4, 1.0, 30, 9);
    const GpdFit fit = fitGpd(ys);
    EXPECT_TRUE(std::isfinite(fit.xi));
    EXPECT_GT(fit.sigma, 0.0);
}

} // anonymous namespace
