/**
 * @file
 * Ecdf tests.
 */

#include <gtest/gtest.h>

#include "stats/ecdf.hh"
#include "stats/rng.hh"

namespace
{

using statsched::stats::Ecdf;
using statsched::stats::Rng;

TEST(Ecdf, StepFunctionSemantics)
{
    Ecdf ecdf({1.0, 2.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(ecdf.evaluate(0.5), 0.0);
    EXPECT_DOUBLE_EQ(ecdf.evaluate(1.0), 0.25);
    EXPECT_DOUBLE_EQ(ecdf.evaluate(2.0), 0.75);
    EXPECT_DOUBLE_EQ(ecdf.evaluate(2.5), 0.75);
    EXPECT_DOUBLE_EQ(ecdf.evaluate(3.0), 1.0);
    EXPECT_DOUBLE_EQ(ecdf.evaluate(99.0), 1.0);
}

TEST(Ecdf, MinMaxAndSpread)
{
    // The Figure 3 example: 0.715 to 1.7 MPPS is a 58% spread.
    Ecdf ecdf({715000.0, 1000000.0, 1700000.0});
    EXPECT_DOUBLE_EQ(ecdf.min(), 715000.0);
    EXPECT_DOUBLE_EQ(ecdf.max(), 1700000.0);
    EXPECT_NEAR(ecdf.relativeSpread(), 0.5794, 1e-4);
}

TEST(Ecdf, TopFractionSpread)
{
    std::vector<double> xs;
    for (int i = 1; i <= 1000; ++i)
        xs.push_back(static_cast<double>(i));
    Ecdf ecdf(xs);
    // Top 1%: values above the 0.99 quantile (~990.01 interpolated).
    EXPECT_NEAR(ecdf.topFractionSpread(0.01),
                (1000.0 - 990.01) / 1000.0, 1e-4);
}

TEST(Ecdf, QuantileMatchesSortedSample)
{
    Rng rng(3);
    std::vector<double> xs;
    for (int i = 0; i < 999; ++i)
        xs.push_back(rng.uniform());
    Ecdf ecdf(xs);
    EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), ecdf.min());
    EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), ecdf.max());
    EXPECT_NEAR(ecdf.quantile(0.5), 0.5, 0.05);
}

TEST(Ecdf, CurveIsMonotone)
{
    Rng rng(4);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    Ecdf ecdf(xs);
    const auto curve = ecdf.curve(64);
    ASSERT_EQ(curve.size(), 64u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].first, curve[i - 1].first);
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, ConvergesToTrueUniformCdf)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.uniform());
    Ecdf ecdf(xs);
    for (double x = 0.1; x < 1.0; x += 0.1)
        EXPECT_NEAR(ecdf.evaluate(x), x, 0.02) << x;
}

} // anonymous namespace
