/**
 * @file
 * Special-function accuracy tests against published table values.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/special_functions.hh"

namespace
{

using namespace statsched::stats;

TEST(SpecialFunctions, GammaPBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedGammaP(1.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaP(1.0, 1e3), 1.0, 1e-12);
    EXPECT_NEAR(regularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0),
                1e-12);
}

TEST(SpecialFunctions, GammaPPlusQIsOne)
{
    for (double a : {0.3, 0.5, 1.0, 2.5, 7.0, 25.0}) {
        for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 40.0}) {
            EXPECT_NEAR(regularizedGammaP(a, x) +
                        regularizedGammaQ(a, x), 1.0, 1e-12)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(SpecialFunctions, GammaPHalfIsErf)
{
    // P(1/2, x) = erf(sqrt(x)).
    for (double x : {0.1, 0.5, 1.0, 2.0, 4.0}) {
        EXPECT_NEAR(regularizedGammaP(0.5, x),
                    std::erf(std::sqrt(x)), 1e-10) << x;
    }
}

TEST(SpecialFunctions, InverseGammaPRoundTrip)
{
    for (double a : {0.4, 0.5, 1.0, 2.0, 5.0, 12.0, 50.0}) {
        for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                         0.999}) {
            const double x = inverseGammaP(a, p);
            EXPECT_NEAR(regularizedGammaP(a, x), p, 1e-8)
                << "a=" << a << " p=" << p;
        }
    }
}

TEST(SpecialFunctions, ChiSquaredQuantileTableValues)
{
    // Published chi-squared table values.
    EXPECT_NEAR(chiSquaredQuantile(0.95, 1), 3.841458821, 1e-6);
    EXPECT_NEAR(chiSquaredQuantile(0.99, 1), 6.634896601, 1e-6);
    EXPECT_NEAR(chiSquaredQuantile(0.90, 1), 2.705543454, 1e-6);
    EXPECT_NEAR(chiSquaredQuantile(0.95, 2), 5.991464547, 1e-6);
    EXPECT_NEAR(chiSquaredQuantile(0.99, 5), 15.08627247, 1e-6);
    EXPECT_NEAR(chiSquaredQuantile(0.50, 10), 9.341818446, 1e-6);
}

TEST(SpecialFunctions, ChiSquaredCdfQuantileRoundTrip)
{
    for (double df : {1.0, 2.0, 3.0, 7.5, 30.0}) {
        for (double p : {0.05, 0.5, 0.95, 0.999}) {
            const double x = chiSquaredQuantile(p, df);
            EXPECT_NEAR(chiSquaredCdf(x, df), p, 1e-8)
                << "df=" << df << " p=" << p;
        }
    }
}

TEST(SpecialFunctions, NormalCdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-15);
    EXPECT_NEAR(normalCdf(1.0), 0.841344746, 1e-8);
    EXPECT_NEAR(normalCdf(-1.959963985), 0.025, 1e-8);
    EXPECT_NEAR(normalCdf(3.0), 0.998650102, 1e-8);
}

TEST(SpecialFunctions, NormalQuantileKnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-8);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829304, 1e-8);
    EXPECT_NEAR(normalQuantile(0.0001), -3.719016485, 1e-7);
}

TEST(SpecialFunctions, NormalQuantileCdfRoundTrip)
{
    for (double p = 0.001; p < 0.999; p += 0.0217) {
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-10) << p;
    }
}

/** Parameterized chi-squared symmetry: quantile is monotone in p. */
class ChiSquaredMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(ChiSquaredMonotone, QuantileMonotoneInProbability)
{
    const double df = GetParam();
    double prev = 0.0;
    for (double p = 0.05; p < 1.0; p += 0.05) {
        const double q = chiSquaredQuantile(p, df);
        EXPECT_GT(q, prev) << "df=" << df << " p=" << p;
        prev = q;
    }
}

INSTANTIATE_TEST_SUITE_P(DegreesOfFreedom, ChiSquaredMonotone,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 10.0,
                                           50.0));

} // anonymous namespace
