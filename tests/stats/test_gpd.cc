/**
 * @file
 * Generalized Pareto Distribution tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/gpd.hh"
#include "stats/rng.hh"

namespace
{

using statsched::stats::Gpd;
using statsched::stats::Rng;

TEST(Gpd, ExponentialSpecialCase)
{
    const Gpd gpd(0.0, 2.0);
    EXPECT_NEAR(gpd.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
    EXPECT_NEAR(gpd.pdf(0.0), 0.5, 1e-12);
    EXPECT_TRUE(std::isinf(gpd.supportUpper()));
    EXPECT_NEAR(gpd.meanValue(), 2.0, 1e-12);
}

TEST(Gpd, NegativeShapeHasFiniteEndpoint)
{
    const Gpd gpd(-0.5, 2.0);
    EXPECT_DOUBLE_EQ(gpd.supportUpper(), 4.0);
    EXPECT_DOUBLE_EQ(gpd.cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(gpd.cdf(5.0), 1.0);
    EXPECT_DOUBLE_EQ(gpd.pdf(5.0), 0.0);
    EXPECT_TRUE(std::isinf(gpd.logPdf(5.0)));
    EXPECT_LT(gpd.logPdf(5.0), 0.0);
}

TEST(Gpd, PositiveShapeHeavyTail)
{
    const Gpd gpd(0.5, 1.0);
    EXPECT_TRUE(std::isinf(gpd.supportUpper()));
    // Survival decays polynomially: 1-G(y) = (1 + y/2)^-2.
    EXPECT_NEAR(1.0 - gpd.cdf(2.0), std::pow(2.0, -2.0), 1e-12);
}

TEST(Gpd, CdfQuantileRoundTrip)
{
    for (double xi : {-0.7, -0.3, -0.05, 0.0, 0.2, 0.8}) {
        const Gpd gpd(xi, 1.7);
        for (double p : {0.0, 0.1, 0.5, 0.9, 0.99}) {
            const double y = gpd.quantile(p);
            EXPECT_NEAR(gpd.cdf(y), p, 1e-10)
                << "xi=" << xi << " p=" << p;
        }
    }
}

TEST(Gpd, PdfIntegratesToCdf)
{
    // Trapezoidal integration of the density reproduces the CDF.
    const Gpd gpd(-0.35, 2.0);
    const double upper = gpd.supportUpper();
    double acc = 0.0;
    const int steps = 200000;
    const double h = upper / steps;
    for (int i = 0; i < steps; ++i) {
        const double a = i * h;
        const double b = a + h;
        acc += 0.5 * (gpd.pdf(a) + gpd.pdf(b)) * h;
        if (i == steps / 2) {
            EXPECT_NEAR(acc, gpd.cdf(b), 1e-4);
        }
    }
    EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(Gpd, LogPdfMatchesLogOfPdf)
{
    const Gpd gpd(-0.2, 3.0);
    for (double y : {0.1, 1.0, 5.0, 12.0}) {
        if (gpd.pdf(y) > 0.0) {
            EXPECT_NEAR(gpd.logPdf(y), std::log(gpd.pdf(y)), 1e-12)
                << y;
        }
    }
}

TEST(Gpd, SampleMeanMatchesTheory)
{
    Rng rng(123);
    for (double xi : {-0.5, -0.2, 0.0, 0.3}) {
        const Gpd gpd(xi, 2.0);
        double sum = 0.0;
        const int n = 200000;
        for (int i = 0; i < n; ++i)
            sum += gpd.sampleFromUniform(rng.uniform());
        EXPECT_NEAR(sum / n, gpd.meanValue(),
                    0.05 * gpd.meanValue()) << "xi=" << xi;
    }
}

TEST(Gpd, SamplesStayInSupport)
{
    Rng rng(7);
    const Gpd gpd(-0.4, 1.0);
    const double upper = gpd.supportUpper();
    for (int i = 0; i < 10000; ++i) {
        const double y = gpd.sampleFromUniform(rng.uniform());
        EXPECT_GE(y, 0.0);
        EXPECT_LE(y, upper);
    }
}

TEST(Gpd, LogLikelihoodSumsLogPdf)
{
    const Gpd gpd(-0.3, 1.5);
    const std::vector<double> ys = {0.5, 1.0, 2.0};
    double expected = 0.0;
    for (double y : ys)
        expected += gpd.logPdf(y);
    EXPECT_NEAR(gpd.logLikelihood(ys), expected, 1e-12);
}

TEST(Gpd, LogLikelihoodInfeasibleObservation)
{
    const Gpd gpd(-0.5, 1.0);   // support [0, 2]
    EXPECT_TRUE(std::isinf(gpd.logLikelihood({0.5, 3.0})));
}

/** Near-zero shape continuity: xi -> 0 limits match exponential. */
class GpdShapeContinuity : public ::testing::TestWithParam<double>
{
};

TEST_P(GpdShapeContinuity, MatchesExponentialNearZero)
{
    const double y = GetParam();
    const Gpd exp_gpd(0.0, 1.3);
    const Gpd near_gpd(1e-12, 1.3);
    EXPECT_NEAR(exp_gpd.cdf(y), near_gpd.cdf(y), 1e-9);
    EXPECT_NEAR(exp_gpd.pdf(y), near_gpd.pdf(y), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Points, GpdShapeContinuity,
                         ::testing::Values(0.1, 0.7, 1.9, 4.2, 9.9));

} // anonymous namespace
