/**
 * @file
 * Descriptive statistics tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

TEST(Descriptive, MeanVarianceKnown)
{
    std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    // Unbiased variance of this classic sample is 32/7.
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
}

TEST(Descriptive, MinMax)
{
    std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(minimum(xs), -1.0);
    EXPECT_DOUBLE_EQ(maximum(xs), 7.0);
}

TEST(Descriptive, QuantileType7Interpolation)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantileSorted(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantileSorted(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantileSorted(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantileSorted(xs, 1.0 / 3.0), 2.0);
}

TEST(Descriptive, SortedCopyDoesNotMutate)
{
    std::vector<double> xs = {3.0, 1.0, 2.0};
    auto sorted = sortedCopy(xs);
    EXPECT_EQ(sorted, (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(xs[0], 3.0);
}

TEST(Descriptive, LinearLeastSquaresExactLine)
{
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(2.5 * i - 7.0);
    }
    const LinearFit fit = linearLeastSquares(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -7.0, 1e-12);
    EXPECT_NEAR(fit.rSquared, 1.0, 1e-12);
}

TEST(Descriptive, LinearLeastSquaresNoisyLine)
{
    Rng rng(5);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(i * 0.1);
        ys.push_back(1.5 * i * 0.1 + 3.0 + rng.normal(0.0, 0.05));
    }
    const LinearFit fit = linearLeastSquares(xs, ys);
    EXPECT_NEAR(fit.slope, 1.5, 0.01);
    EXPECT_NEAR(fit.intercept, 3.0, 0.05);
    EXPECT_GT(fit.rSquared, 0.99);
}

TEST(Descriptive, LinearLeastSquaresDegenerate)
{
    // Constant y: perfect horizontal fit.
    const LinearFit flat =
        linearLeastSquares({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0});
    EXPECT_DOUBLE_EQ(flat.slope, 0.0);
    EXPECT_DOUBLE_EQ(flat.intercept, 5.0);
    EXPECT_DOUBLE_EQ(flat.rSquared, 1.0);

    // Constant x: no slope recoverable.
    const LinearFit vertical =
        linearLeastSquares({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(vertical.slope, 0.0);
    EXPECT_DOUBLE_EQ(vertical.rSquared, 0.0);
}

TEST(Descriptive, PearsonCorrelation)
{
    EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0,
                1e-12);
    EXPECT_NEAR(pearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0,
                1e-12);
    EXPECT_DOUBLE_EQ(pearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

} // anonymous namespace
