/**
 * @file
 * GPD goodness-of-fit diagnostics tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/diagnostics.hh"
#include "stats/gpd_fit.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

std::vector<double>
gpdSample(double xi, double sigma, int n, std::uint64_t seed)
{
    Rng rng(seed);
    const Gpd gpd(xi, sigma);
    std::vector<double> ys;
    for (int i = 0; i < n; ++i)
        ys.push_back(gpd.sampleFromUniform(rng.uniform()));
    return ys;
}

TEST(Diagnostics, QuantilePlotOfTrueModelIsStraight)
{
    const Gpd model(-0.35, 1.5);
    const auto ys = gpdSample(-0.35, 1.5, 2000, 31);
    const auto plot = gpdQuantilePlot(ys, model);
    ASSERT_EQ(plot.points.size(), ys.size());
    EXPECT_GT(plot.correlation, 0.995);
    EXPECT_GT(plot.rSquared, 0.99);
    // Points are monotone in both coordinates.
    for (std::size_t i = 1; i < plot.points.size(); ++i) {
        EXPECT_GE(plot.points[i].first, plot.points[i - 1].first);
        EXPECT_GE(plot.points[i].second, plot.points[i - 1].second);
    }
}

TEST(Diagnostics, QuantilePlotOfWrongModelBends)
{
    // Data from a bounded GPD, model exponential-like: correlation
    // drops below the true-model case.
    const auto ys = gpdSample(-0.6, 1.0, 2000, 32);
    const Gpd wrong(0.4, 1.0);
    const Gpd right(-0.6, 1.0);
    const auto bad = gpdQuantilePlot(ys, wrong);
    const auto good = gpdQuantilePlot(ys, right);
    EXPECT_LT(bad.correlation, good.correlation);
}

TEST(Diagnostics, KsStatisticSmallForTrueModel)
{
    const auto ys = gpdSample(-0.3, 2.0, 4000, 33);
    const Gpd model(-0.3, 2.0);
    // The 95% KS band at n=4000 is roughly 1.36/sqrt(n) = 0.0215.
    EXPECT_LT(ksStatistic(ys, model), 0.03);
}

TEST(Diagnostics, KsStatisticLargeForWrongModel)
{
    const auto ys = gpdSample(-0.3, 2.0, 4000, 34);
    const Gpd wrong(-0.3, 4.0);
    EXPECT_GT(ksStatistic(ys, wrong), 0.15);
}

TEST(Diagnostics, FittedModelPassesItsOwnQuantilePlot)
{
    // End-to-end: fit, then check the paper's "quantile plots
    // strongly suggest GPD" observation holds for synthetic data.
    const auto ys = gpdSample(-0.45, 1.2, 3000, 35);
    const GpdFit fit = fitGpd(ys);
    const auto plot = gpdQuantilePlot(ys, fit.distribution());
    EXPECT_GT(plot.rSquared, 0.99);
}

} // anonymous namespace
