/**
 * @file
 * GEV distribution and block-maxima tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/gev.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

TEST(Gev, GumbelSpecialCase)
{
    const Gev gumbel(0.0, 0.0, 1.0);
    // H(0) = exp(-1).
    EXPECT_NEAR(gumbel.cdf(0.0), std::exp(-1.0), 1e-12);
    EXPECT_TRUE(std::isinf(gumbel.supportUpper()));
    // Mode at mu: density e^-1.
    EXPECT_NEAR(gumbel.pdf(0.0), std::exp(-1.0), 1e-12);
}

TEST(Gev, NegativeShapeFiniteEndpoint)
{
    const Gev gev(-0.5, 10.0, 2.0);
    EXPECT_DOUBLE_EQ(gev.supportUpper(), 14.0);
    EXPECT_DOUBLE_EQ(gev.cdf(15.0), 1.0);
    EXPECT_DOUBLE_EQ(gev.pdf(15.0), 0.0);
}

TEST(Gev, CdfQuantileRoundTrip)
{
    for (double xi : {-0.5, -0.2, 0.0, 0.3}) {
        const Gev gev(xi, 5.0, 1.5);
        for (double p : {0.05, 0.25, 0.5, 0.9, 0.99}) {
            EXPECT_NEAR(gev.cdf(gev.quantile(p)), p, 1e-10)
                << "xi=" << xi << " p=" << p;
        }
    }
}

TEST(Gev, LogPdfMatchesPdf)
{
    const Gev gev(-0.3, 2.0, 1.0);
    for (double x : {1.0, 2.0, 4.0}) {
        EXPECT_NEAR(gev.logPdf(x), std::log(gev.pdf(x)), 1e-12);
    }
}

TEST(Gev, FitRecoversParameters)
{
    Rng rng(77);
    const Gev truth(-0.3, 100.0, 5.0);
    std::vector<double> maxima;
    for (int i = 0; i < 3000; ++i) {
        double u = rng.uniform();
        while (u <= 0.0)
            u = rng.uniform();
        maxima.push_back(truth.sampleFromUniform(u));
    }
    const GevFit fit = fitGev(maxima);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.xi, -0.3, 0.06);
    EXPECT_NEAR(fit.mu, 100.0, 0.5);
    EXPECT_NEAR(fit.sigma, 5.0, 0.5);
    EXPECT_NEAR(fit.upperEndpoint(), truth.supportUpper(), 2.0);
}

TEST(Gev, BlockMaximaEstimatesEndpoint)
{
    // Bounded population with endpoint 50: survival ~ (1-x/50)^2.
    Rng rng(78);
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i) {
        sample.push_back(
            50.0 * (1.0 - std::sqrt(1.0 - rng.uniform())));
    }
    const GevFit fit = blockMaximaEstimate(sample, 100);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(fit.xi, 0.0);
    EXPECT_NEAR(fit.upperEndpoint(), 50.0, 1.5);
}

TEST(Gev, BlockMaximaHandlesUnevenBlocks)
{
    Rng rng(79);
    std::vector<double> sample;
    for (int i = 0; i < 1013; ++i)   // not divisible by 25
        sample.push_back(rng.uniform());
    const GevFit fit = blockMaximaEstimate(sample, 25);
    EXPECT_TRUE(std::isfinite(fit.xi));
    EXPECT_GT(fit.sigma, 0.0);
}

} // anonymous namespace
