/**
 * @file
 * Identity-contract tests for the incremental POT estimator
 * (stats/pot_accumulator) and the warm-started GPD fit.
 *
 * The fast paths are only admissible because they are provably
 * equivalent to the from-scratch pipeline:
 *
 *  - cold PotAccumulator::estimate() must be bit-identical to
 *    estimateOptimalPerformance() on the cumulative sample, round
 *    after round, including rounds served by the tail-unchanged
 *    shortcut;
 *  - warm-started fitGpd() must land on the same optimum as the cold
 *    fit to likelihood tolerance;
 *  - the threaded bootstrap must be bitwise equal to the serial one.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/bootstrap.hh"
#include "stats/pot.hh"
#include "stats/pot_accumulator.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

/** Performance-like sample bounded above by `bound` (beta-ish shape). */
std::vector<double>
boundedSample(double bound, std::size_t n, Rng &rng)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double u = rng.uniform();
        const double v = rng.uniform();
        xs.push_back(bound * (1.0 - 0.25 * (1.0 - u) * (1.0 - v)));
    }
    return xs;
}

/**
 * Sample with a regular GPD tail (xi ~ -0.4) below `bound`: the excess
 * bound - x is s * U^0.4, so P(excess <= w) ~ w^2.5. The MLE is a
 * unique interior optimum here, which the warm-vs-cold comparisons
 * need — for samples whose density diverges at the endpoint (xi <= -1)
 * the GPD likelihood is unbounded and any optimizer's answer is
 * start-dependent by nature.
 */
std::vector<double>
regularTailSample(double bound, std::size_t n, Rng &rng)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(bound -
                     0.3 * bound * std::pow(rng.uniform(), 0.4));
    return xs;
}

bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

/** Bitwise equality of every PotEstimate field. */
void
expectBitIdentical(const PotEstimate &a, const PotEstimate &b,
                   std::size_t round)
{
    EXPECT_TRUE(sameBits(a.threshold, b.threshold)) << "round " << round;
    EXPECT_EQ(a.exceedanceCount, b.exceedanceCount) << "round " << round;
    EXPECT_TRUE(sameBits(a.exceedanceRate, b.exceedanceRate))
        << "round " << round;
    EXPECT_TRUE(sameBits(a.tailLinearity, b.tailLinearity))
        << "round " << round;
    EXPECT_TRUE(sameBits(a.maxObserved, b.maxObserved))
        << "round " << round;
    EXPECT_EQ(a.valid, b.valid) << "round " << round;
    EXPECT_EQ(a.fit.converged, b.fit.converged) << "round " << round;
    EXPECT_TRUE(sameBits(a.fit.xi, b.fit.xi)) << "round " << round;
    EXPECT_TRUE(sameBits(a.fit.sigma, b.fit.sigma)) << "round " << round;
    EXPECT_TRUE(sameBits(a.fit.logLikelihood, b.fit.logLikelihood))
        << "round " << round;
    EXPECT_TRUE(sameBits(a.upb, b.upb)) << "round " << round;
    EXPECT_TRUE(sameBits(a.upbLower, b.upbLower)) << "round " << round;
    EXPECT_TRUE(sameBits(a.upbUpper, b.upbUpper)) << "round " << round;
    EXPECT_TRUE(sameBits(a.profileMaxLogLik, b.profileMaxLogLik))
        << "round " << round;
    EXPECT_TRUE(sameBits(a.confidenceLevel, b.confidenceLevel))
        << "round " << round;
}

/**
 * Runs `rounds` extend/estimate cycles and checks the cold accumulator
 * against the from-scratch pipeline after every one.
 */
void
checkColdIdentity(const PotOptions &options, std::size_t initial,
                  std::size_t extension, std::size_t rounds,
                  std::uint64_t seed)
{
    Rng rng(seed);
    PotAccumulator acc(options, false);
    std::vector<double> cumulative;
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto batch =
            boundedSample(250.0, r == 0 ? initial : extension, rng);
        cumulative.insert(cumulative.end(), batch.begin(), batch.end());
        acc.extend(batch);
        const auto inc = acc.estimate();
        const auto scratch =
            estimateOptimalPerformance(cumulative, options);
        expectBitIdentical(inc, scratch, r);
    }
}

TEST(PotAccumulator, ColdBitIdenticalFixedFraction)
{
    checkColdIdentity({}, 900, 150, 6, 11);
}

TEST(PotAccumulator, ColdBitIdenticalLinearityScan)
{
    PotOptions options;
    options.threshold.policy = ThresholdPolicy::LinearityScan;
    checkColdIdentity(options, 900, 150, 6, 12);
}

TEST(PotAccumulator, ColdBitIdenticalAcrossSmallSampleRounds)
{
    // The first rounds are below 2 * minExceedances, so both pipelines
    // must report invalid estimates, then recover identically.
    checkColdIdentity({}, 15, 15, 8, 13);
}

TEST(PotAccumulator, ShortcutFiresAndStaysBitIdentical)
{
    // With minExceedances = 20 and a 5% cap, the cap is pinned at 20
    // for every n <= 400, so extending a 300-value sample with values
    // below the current threshold cannot change the selected tail:
    // the shortcut must serve those rounds, and serve them with the
    // exact estimate the from-scratch pipeline computes.
    const PotOptions options;
    Rng rng(21);
    PotAccumulator acc(options, false);

    std::vector<double> cumulative = boundedSample(250.0, 300, rng);
    acc.extend(cumulative);
    const auto first = acc.estimate();
    ASSERT_TRUE(first.valid);
    EXPECT_EQ(acc.shortcutHits(), 0u);

    for (std::size_t r = 0; r < 4; ++r) {
        // 10 values strictly below the selected threshold.
        std::vector<double> batch;
        for (int i = 0; i < 10; ++i)
            batch.push_back(first.threshold * (0.5 + 0.04 * i));
        cumulative.insert(cumulative.end(), batch.begin(), batch.end());
        acc.extend(batch);
        const auto inc = acc.estimate();
        const auto scratch =
            estimateOptimalPerformance(cumulative, options);
        expectBitIdentical(inc, scratch, r);
    }
    EXPECT_EQ(acc.shortcutHits(), 4u);
}

TEST(PotAccumulator, WarmUpbMatchesColdToStatisticalNoise)
{
    const PotOptions options;
    Rng rng(31);
    PotAccumulator warm(options, true);
    PotAccumulator cold(options, false);
    for (std::size_t r = 0; r < 6; ++r) {
        const auto batch =
            regularTailSample(250.0, r == 0 ? 900 : 150, rng);
        warm.extend(batch);
        cold.extend(batch);
        const auto w = warm.estimate();
        const auto c = cold.estimate();
        ASSERT_EQ(w.valid, c.valid) << "round " << r;
        if (!w.valid)
            continue;
        // Same optimum to Nelder-Mead tolerance: the warm search only
        // starts closer, it does not change the objective.
        EXPECT_NEAR(w.fit.logLikelihood, c.fit.logLikelihood,
                    1e-9 * std::fabs(c.fit.logLikelihood) + 1e-9)
            << "round " << r;
        EXPECT_NEAR(w.upb, c.upb, 1e-5 * c.upb) << "round " << r;
    }
}

TEST(GpdFitWarmStart, MatchesColdLikelihood)
{
    Rng rng(41);
    auto xs = regularTailSample(250.0, 2000, rng);
    PotOptions options;
    auto first = estimateOptimalPerformance(xs, options);
    ASSERT_TRUE(first.valid);

    // Re-select on an extended sample and fit both ways.
    auto extra = regularTailSample(250.0, 400, rng);
    xs.insert(xs.end(), extra.begin(), extra.end());
    const auto selection = selectThreshold(xs, options.threshold);
    ASSERT_GE(selection.exceedances.size(),
              options.threshold.minExceedances);

    const GpdFit cold = fitGpd(selection.exceedances,
                               GpdEstimator::MaximumLikelihood);
    const GpdFit warm = fitGpd(selection.exceedances,
                               GpdEstimator::MaximumLikelihood,
                               &first.fit);
    ASSERT_TRUE(cold.converged);
    ASSERT_TRUE(warm.converged);
    EXPECT_NEAR(warm.logLikelihood, cold.logLikelihood,
                1e-9 * std::fabs(cold.logLikelihood) + 1e-9);
}

TEST(GpdFitWarmStart, UnusableWarmStartFallsBackToCold)
{
    Rng rng(51);
    const auto xs = boundedSample(250.0, 1200, rng);
    const auto selection = selectThreshold(xs);

    GpdFit bogus;          // diverged / zero-sigma previous round
    bogus.converged = false;
    bogus.sigma = 0.0;
    const GpdFit cold = fitGpd(selection.exceedances,
                               GpdEstimator::MaximumLikelihood);
    const GpdFit fallback = fitGpd(selection.exceedances,
                                   GpdEstimator::MaximumLikelihood,
                                   &bogus);
    // An unusable warm start must take the cold path exactly.
    EXPECT_TRUE(sameBits(fallback.xi, cold.xi));
    EXPECT_TRUE(sameBits(fallback.sigma, cold.sigma));
    EXPECT_TRUE(sameBits(fallback.logLikelihood, cold.logLikelihood));
}

TEST(PotAccumulator, RejectsNonFiniteValuesOnExtend)
{
    // Failed measurements leaking through the double channel must not
    // enter the maintained sample — the later estimates must equal
    // those over the finite values alone.
    Rng rng(71);
    auto xs = boundedSample(180.0, 1200, rng);

    PotAccumulator clean(PotOptions{}, false);
    clean.extend(xs);

    auto dirty_batch = xs;
    dirty_batch.insert(dirty_batch.begin() + 100,
                       std::numeric_limits<double>::quiet_NaN());
    dirty_batch.push_back(std::numeric_limits<double>::infinity());
    dirty_batch.push_back(-std::numeric_limits<double>::infinity());
    PotAccumulator dirty(PotOptions{}, false);
    dirty.extend(dirty_batch);

    EXPECT_EQ(dirty.rejectedNonFinite(), 3u);
    EXPECT_EQ(dirty.size(), clean.size());
    EXPECT_EQ(dirty.sorted(), clean.sorted());

    const auto est_clean = clean.estimate();
    const auto est_dirty = dirty.estimate();
    ASSERT_TRUE(est_clean.valid);
    ASSERT_TRUE(est_dirty.valid);
    EXPECT_TRUE(sameBits(est_clean.upb, est_dirty.upb));

    // An all-garbage batch is a no-op.
    dirty.extend({std::numeric_limits<double>::quiet_NaN()});
    EXPECT_EQ(dirty.rejectedNonFinite(), 4u);
    EXPECT_EQ(dirty.size(), clean.size());
}

TEST(Bootstrap, ParallelBitwiseEqualsSerial)
{
    Rng rng(61);
    const auto xs = boundedSample(250.0, 1500, rng);
    const auto serial = bootstrapUpbInterval(xs, {}, 80, 5, 1);
    const auto threaded = bootstrapUpbInterval(xs, {}, 80, 5, 4);
    EXPECT_TRUE(sameBits(serial.lower, threaded.lower));
    EXPECT_TRUE(sameBits(serial.upper, threaded.upper));
    EXPECT_TRUE(sameBits(serial.median, threaded.median));
    EXPECT_EQ(serial.replicates, threaded.replicates);
    EXPECT_EQ(serial.failed, threaded.failed);
}

} // anonymous namespace
