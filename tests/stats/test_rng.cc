/**
 * @file
 * RNG statistical sanity tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/rng.hh"

namespace
{

using statsched::stats::Rng;

TEST(Rng, DeterministicBySeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntUnbiasedAcrossBuckets)
{
    Rng rng(4);
    const std::uint64_t buckets = 7;
    std::vector<int> counts(buckets, 0);
    const int n = 140000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(buckets)];
    // Chi-squared test at a generous threshold.
    const double expected = static_cast<double>(n) / buckets;
    double chi2 = 0.0;
    for (int c : counts)
        chi2 += (c - expected) * (c - expected) / expected;
    // 99.9% quantile of chi2 with 6 df is 22.46.
    EXPECT_LT(chi2, 22.46);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(3), 3u);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.uniformInt(1), 0u);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(6);
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double z = rng.normal();
        sum += z;
        sum_sq += z * z;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParameters)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentish)
{
    Rng parent(8);
    Rng child = parent.split();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(parent.next());
        seen.insert(child.next());
    }
    // No collisions between the streams in a short window.
    EXPECT_EQ(seen.size(), 2000u);
}

} // anonymous namespace
