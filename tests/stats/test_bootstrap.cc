/**
 * @file
 * Bootstrap confidence interval tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

std::vector<double>
boundedSample(double cap, int n, std::uint64_t seed)
{
    // Survival (1 - x/cap)^2 near the endpoint (xi = -0.5).
    Rng rng(seed);
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(cap * (1.0 - std::sqrt(1.0 - rng.uniform())));
    return xs;
}

TEST(Bootstrap, IntervalBracketsTheEndpoint)
{
    const auto xs = boundedSample(100.0, 3000, 1);
    const auto interval =
        bootstrapUpbInterval(xs, {}, 120, 99);
    EXPECT_GE(interval.replicates, 100u);
    EXPECT_LE(interval.lower, 100.0);
    EXPECT_GE(interval.upper, 99.0);
    EXPECT_GE(interval.median, interval.lower);
    EXPECT_LE(interval.median, interval.upper);
    // The interval is tight at this sample size.
    EXPECT_LT(interval.upper - interval.lower, 10.0);
}

TEST(Bootstrap, AgreesWithProfileLikelihoodOrderOfMagnitude)
{
    const auto xs = boundedSample(100.0, 3000, 2);
    const auto profile = estimateOptimalPerformance(xs);
    ASSERT_TRUE(profile.valid);
    const auto boot = bootstrapUpbInterval(xs, {}, 120, 7);
    // The two intervals overlap and the point estimate sits inside
    // the bootstrap interval.
    EXPECT_LE(boot.lower, profile.upb);
    EXPECT_GE(boot.upper * 1.02, profile.upb);
    if (std::isfinite(profile.upbUpper)) {
        EXPECT_LT(boot.lower, profile.upbUpper);
        EXPECT_GT(boot.upper, profile.upbLower);
    }
}

TEST(Bootstrap, DeterministicBySeed)
{
    const auto xs = boundedSample(10.0, 1500, 3);
    const auto a = bootstrapUpbInterval(xs, {}, 80, 5);
    const auto b = bootstrapUpbInterval(xs, {}, 80, 5);
    EXPECT_DOUBLE_EQ(a.lower, b.lower);
    EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

} // anonymous namespace
