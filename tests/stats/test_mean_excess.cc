/**
 * @file
 * Mean-excess function tests, including the analytical signatures the
 * paper relies on (linearity for GPD tails).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hh"
#include "stats/gpd.hh"
#include "stats/mean_excess.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

TEST(MeanExcess, HandComputedSmallSample)
{
    // Sample {1, 2, 3, 4}: e(1.5) = mean{0.5, 1.5, 2.5} = 1.5.
    MeanExcess me({4.0, 1.0, 3.0, 2.0});
    EXPECT_DOUBLE_EQ(me.evaluate(1.5), 1.5);
    // e(3) = mean{1} = 1; threshold comparisons are strict.
    EXPECT_DOUBLE_EQ(me.evaluate(3.0), 1.0);
    // Nothing exceeds the maximum.
    EXPECT_DOUBLE_EQ(me.evaluate(4.0), 0.0);
    EXPECT_DOUBLE_EQ(me.evaluate(99.0), 0.0);
}

TEST(MeanExcess, SortedAccessor)
{
    MeanExcess me({3.0, 1.0, 2.0});
    EXPECT_EQ(me.sorted(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MeanExcess, ExponentialHasConstantMeanExcess)
{
    // Memorylessness: e(u) == mean for the exponential distribution.
    Rng rng(21);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i)
        xs.push_back(-2.0 * std::log(1.0 - rng.uniform()));
    MeanExcess me(std::move(xs));
    for (double u : {0.5, 1.0, 2.0, 4.0})
        EXPECT_NEAR(me.evaluate(u), 2.0, 0.1) << u;
}

TEST(MeanExcess, UniformHasLinearDecreasingMeanExcess)
{
    // Uniform(0, 1): e(u) = (1-u)/2.
    Rng rng(22);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i)
        xs.push_back(rng.uniform());
    MeanExcess me(std::move(xs));
    for (double u : {0.1, 0.3, 0.5, 0.7, 0.9})
        EXPECT_NEAR(me.evaluate(u), (1.0 - u) / 2.0, 0.01) << u;
}

TEST(MeanExcess, GpdTailHasTheoreticalSlope)
{
    // GPD(xi, sigma): e(u) = (sigma + xi u) / (1 - xi).
    const double xi = -0.4;
    const double sigma = 2.0;
    Rng rng(23);
    const Gpd gpd(xi, sigma);
    std::vector<double> xs;
    for (int i = 0; i < 200000; ++i)
        xs.push_back(gpd.sampleFromUniform(rng.uniform()));
    MeanExcess me(std::move(xs));
    for (double u : {0.5, 1.5, 2.5, 3.5}) {
        EXPECT_NEAR(me.evaluate(u), (sigma + xi * u) / (1.0 - xi),
                    0.05) << u;
    }
}

TEST(MeanExcess, PlotSkipsDuplicatesAndExcludesMax)
{
    MeanExcess me({1.0, 1.0, 2.0, 3.0});
    const auto plot = me.plot();
    // Points at 1 and 2 only (3 is the maximum).
    ASSERT_EQ(plot.size(), 2u);
    EXPECT_DOUBLE_EQ(plot[0].first, 1.0);
    EXPECT_DOUBLE_EQ(plot[1].first, 2.0);
}

TEST(MeanExcess, UpperPlotRestrictsRange)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    MeanExcess me(std::move(xs));
    const auto upper = me.upperPlot(0.9);
    ASSERT_FALSE(upper.empty());
    for (const auto &p : upper)
        EXPECT_GE(p.first, 90.0);
}

TEST(MeanExcess, TailLinearityHighForGpdSample)
{
    Rng rng(24);
    const Gpd gpd(-0.35, 1.0);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(gpd.sampleFromUniform(rng.uniform()));
    MeanExcess me(std::move(xs));
    const double u = quantileSorted(me.sorted(), 0.5);
    EXPECT_GT(me.tailLinearity(u), 0.9);
}

TEST(MeanExcess, TailLinearityDegenerate)
{
    MeanExcess me({1.0, 2.0});
    // Only one plot point above any threshold: reports 0.
    EXPECT_DOUBLE_EQ(me.tailLinearity(1.5), 0.0);
}

} // anonymous namespace
