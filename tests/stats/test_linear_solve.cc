/**
 * @file
 * Cholesky solve and ridge regression tests.
 */

#include <gtest/gtest.h>

#include "stats/linear_solve.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::stats;

TEST(CholeskySolve, IdentitySystem)
{
    Matrix a(3);
    for (int i = 0; i < 3; ++i)
        a.at(i, i) = 1.0;
    const auto x = choleskySolve(a, {1.0, 2.0, 3.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(CholeskySolve, KnownSpdSystem)
{
    // A = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2].
    Matrix a(2);
    a.at(0, 0) = 4.0;
    a.at(0, 1) = 2.0;
    a.at(1, 0) = 2.0;
    a.at(1, 1) = 3.0;
    const auto x = choleskySolve(a, {10.0, 9.0});
    EXPECT_NEAR(x[0], 1.5, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskySolve, RandomSpdRoundTrip)
{
    Rng rng(4);
    const std::size_t n = 8;
    // Build A = B B^T + I (SPD) and verify A x = b round trips.
    Matrix b(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b.at(i, j) = rng.normal();
    Matrix a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = (i == j) ? 1.0 : 0.0;
            for (std::size_t k = 0; k < n; ++k)
                s += b.at(i, k) * b.at(j, k);
            a.at(i, j) = s;
        }
    }
    std::vector<double> truth(n);
    for (auto &v : truth)
        v = rng.normal();
    std::vector<double> rhs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            rhs[i] += a.at(i, j) * truth[j];

    const auto x = choleskySolve(a, rhs);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], truth[i], 1e-8);
}

TEST(RidgeRegression, RecoversLinearModel)
{
    Rng rng(5);
    const std::vector<double> w_true = {3.0, -2.0, 0.5};
    std::vector<std::vector<double>> rows;
    std::vector<double> ys;
    for (int i = 0; i < 500; ++i) {
        std::vector<double> row = {1.0, rng.normal(), rng.normal()};
        double y = 0.0;
        for (int j = 0; j < 3; ++j)
            y += w_true[j] * row[j];
        rows.push_back(row);
        ys.push_back(y + rng.normal(0.0, 0.01));
    }
    const auto w = ridgeRegression(rows, ys, 1e-8);
    for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(w[j], w_true[j], 0.01) << j;
}

TEST(RidgeRegression, RidgeShrinksCollinearWeights)
{
    // Duplicated feature: heavy ridge splits the weight evenly.
    std::vector<std::vector<double>> rows;
    std::vector<double> ys;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.1;
        rows.push_back({x, x});
        ys.push_back(2.0 * x);
    }
    const auto w = ridgeRegression(rows, ys, 1e-3);
    EXPECT_NEAR(w[0], w[1], 1e-6);
    EXPECT_NEAR(w[0] + w[1], 2.0, 0.01);
}

} // anonymous namespace
