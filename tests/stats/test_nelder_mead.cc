/**
 * @file
 * Nelder-Mead optimizer tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/nelder_mead.hh"

namespace
{

using namespace statsched::stats;

TEST(NelderMead, QuadraticBowl1D)
{
    auto f = [](const std::vector<double> &x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + 1.0;
    };
    const auto result = nelderMeadMinimize(f, {0.0});
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.point[0], 3.0, 1e-6);
    EXPECT_NEAR(result.value, 1.0, 1e-9);
}

TEST(NelderMead, QuadraticBowl4D)
{
    auto f = [](const std::vector<double> &x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
            const double d = x[i] - static_cast<double>(i);
            s += (i + 1) * d * d;
        }
        return s;
    };
    const auto result = nelderMeadMinimize(f, {5.0, 5.0, 5.0, 5.0});
    EXPECT_TRUE(result.converged);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(result.point[i], static_cast<double>(i), 1e-4);
}

TEST(NelderMead, Rosenbrock)
{
    auto f = [](const std::vector<double> &x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxIterations = 10000;
    const auto result = nelderMeadMinimize(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(result.point[0], 1.0, 1e-4);
    EXPECT_NEAR(result.point[1], 1.0, 1e-4);
}

TEST(NelderMead, HandlesInfiniteRegions)
{
    // Constrained bowl: +inf outside x > 0.5; minimum at the
    // boundary-interior point 1.0.
    auto f = [](const std::vector<double> &x) {
        if (x[0] <= 0.5)
            return std::numeric_limits<double>::infinity();
        return (x[0] - 1.0) * (x[0] - 1.0);
    };
    const auto result = nelderMeadMinimize(f, {2.0});
    EXPECT_NEAR(result.point[0], 1.0, 1e-6);
}

TEST(NelderMead, StartingAtZeroUsesAbsolutePerturbation)
{
    auto f = [](const std::vector<double> &x) {
        return x[0] * x[0] + (x[1] - 0.001) * (x[1] - 0.001);
    };
    const auto result = nelderMeadMinimize(f, {0.0, 0.0});
    EXPECT_NEAR(result.point[0], 0.0, 1e-6);
    EXPECT_NEAR(result.point[1], 0.001, 1e-6);
}

TEST(NelderMead, RespectsIterationBudget)
{
    auto f = [](const std::vector<double> &x) {
        return std::sin(x[0]) + 0.01 * x[0] * x[0];
    };
    NelderMeadOptions options;
    options.maxIterations = 3;
    const auto result = nelderMeadMinimize(f, {10.0}, options);
    EXPECT_FALSE(result.converged);
    EXPECT_LE(result.iterations, 3u);
}

TEST(NelderMead, MatlabStyleAbsoluteValue)
{
    // Non-smooth objective still converges to the kink.
    auto f = [](const std::vector<double> &x) {
        return std::fabs(x[0] - 2.5) + std::fabs(x[1] + 1.5);
    };
    const auto result = nelderMeadMinimize(f, {0.0, 0.0});
    EXPECT_NEAR(result.point[0], 2.5, 1e-5);
    EXPECT_NEAR(result.point[1], -1.5, 1e-5);
}

} // anonymous namespace
