/**
 * @file
 * POT threshold selection tests.
 */

#include <gtest/gtest.h>

#include "stats/gpd.hh"
#include "stats/rng.hh"
#include "stats/threshold.hh"

namespace
{

using namespace statsched::stats;

std::vector<double>
normalSample(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(rng.normal(100.0, 10.0));
    return xs;
}

TEST(Threshold, FixedFractionTakesTopFivePercent)
{
    const auto xs = normalSample(2000, 1);
    ThresholdOptions options;
    options.policy = ThresholdPolicy::FixedFraction;
    const auto sel = selectThreshold(xs, options);
    // 5% of 2000 = 100 exceedances (fewer only under ties).
    EXPECT_EQ(sel.exceedances.size(), 100u);
    for (double y : sel.exceedances)
        EXPECT_GT(y, 0.0);
}

TEST(Threshold, PaperExceedanceCounts)
{
    // The paper's samples of 1000 / 2000 / 5000 use at most
    // 50 / 100 / 250 exceedances.
    for (int n : {1000, 2000, 5000}) {
        const auto xs = normalSample(n, 100 + n);
        const auto sel = selectThreshold(xs, {});
        EXPECT_EQ(sel.exceedances.size(),
                  static_cast<std::size_t>(n / 20)) << n;
    }
}

TEST(Threshold, ExceedancesMatchSortedTail)
{
    const auto xs = normalSample(400, 2);
    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const auto sel = selectThreshold(xs, {});
    ASSERT_EQ(sel.exceedances.size(), 20u);
    // The largest exceedance reconstructs the sample maximum.
    double max_y = 0.0;
    for (double y : sel.exceedances)
        max_y = std::max(max_y, y);
    EXPECT_DOUBLE_EQ(sel.threshold + max_y, sorted.back());
    // The threshold equals the highest excluded order statistic.
    EXPECT_DOUBLE_EQ(sel.threshold, sorted[sorted.size() - 21]);
}

TEST(Threshold, LinearityScanStaysWithinCap)
{
    const auto xs = normalSample(3000, 3);
    ThresholdOptions options;
    options.policy = ThresholdPolicy::LinearityScan;
    options.minExceedances = 30;
    const auto sel = selectThreshold(xs, options);
    EXPECT_GE(sel.exceedances.size(), 30u);
    EXPECT_LE(sel.exceedances.size(), 150u);
    EXPECT_GT(sel.tailLinearity, 0.0);
}

TEST(Threshold, LinearityScanPrefersLinearTail)
{
    // A GPD sample has a linear mean-excess tail, so the scan should
    // report high linearity at its pick.
    Rng rng(4);
    const Gpd gpd(-0.4, 2.0);
    std::vector<double> xs;
    for (int i = 0; i < 4000; ++i)
        xs.push_back(gpd.sampleFromUniform(rng.uniform()));
    ThresholdOptions options;
    options.policy = ThresholdPolicy::LinearityScan;
    const auto sel = selectThreshold(xs, options);
    EXPECT_GT(sel.tailLinearity, 0.85);
}

TEST(Threshold, RespectsMinimumExceedances)
{
    const auto xs = normalSample(200, 5);
    ThresholdOptions options;
    options.minExceedances = 15;
    const auto sel = selectThreshold(xs, options);
    // 5% of 200 = 10 < minimum, so the floor applies.
    EXPECT_GE(sel.exceedances.size(), 15u);
}

} // anonymous namespace
