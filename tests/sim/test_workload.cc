/**
 * @file
 * Workload container tests.
 */

#include <gtest/gtest.h>

#include "sim/benchmarks.hh"
#include "sim/workload.hh"

namespace
{

using namespace statsched::sim;

AppInstance
instanceOf(const std::string &name)
{
    AppInstance inst;
    inst.name = name;
    TaskProfile r;
    r.role = StageRole::Receive;
    TaskProfile p;
    p.role = StageRole::Process;
    TaskProfile t;
    t.role = StageRole::Transmit;
    inst.stages = {r, p, t};
    return inst;
}

TEST(Workload, FlattensTasksInInstanceOrder)
{
    Workload wl("w");
    wl.addInstance(instanceOf("a"));
    wl.addInstance(instanceOf("b"));
    EXPECT_EQ(wl.taskCount(), 6u);
    EXPECT_EQ(wl.tasks()[0].role, StageRole::Receive);
    EXPECT_EQ(wl.tasks()[1].role, StageRole::Process);
    EXPECT_EQ(wl.tasks()[2].role, StageRole::Transmit);
    EXPECT_EQ(wl.tasks()[3].role, StageRole::Receive);
}

TEST(Workload, EdgesFollowPipelineOrder)
{
    Workload wl("w");
    wl.addInstance(instanceOf("a"));
    wl.addInstance(instanceOf("b"));
    const auto &edges = wl.edges();
    ASSERT_EQ(edges.size(), 4u);
    EXPECT_EQ(edges[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
    EXPECT_EQ(edges[1], (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
    EXPECT_EQ(edges[2], (std::pair<std::uint32_t, std::uint32_t>{3, 4}));
    EXPECT_EQ(edges[3], (std::pair<std::uint32_t, std::uint32_t>{4, 5}));
}

TEST(Workload, InstanceTaskRanges)
{
    Workload wl("w");
    wl.addInstance(instanceOf("a"));
    wl.addInstance(instanceOf("b"));
    EXPECT_EQ(wl.instanceTaskRange(0),
              (std::pair<std::uint32_t, std::uint32_t>{0, 2}));
    EXPECT_EQ(wl.instanceTaskRange(1),
              (std::pair<std::uint32_t, std::uint32_t>{3, 5}));
}

TEST(Benchmarks, SuiteContainsTheFivePaperBenchmarks)
{
    const auto suite = caseStudySuite();
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(benchmarkName(suite[0]), "IPFwd-L1");
    EXPECT_EQ(benchmarkName(suite[1]), "IPFwd-Mem");
    EXPECT_EQ(benchmarkName(suite[2]), "Packet analyzer");
    EXPECT_EQ(benchmarkName(suite[3]), "Aho-Corasick");
    EXPECT_EQ(benchmarkName(suite[4]), "Stateful");
}

TEST(Benchmarks, EightInstancesMakeTwentyFourThreads)
{
    // The paper's case study: 8 instances = 24 simultaneous threads.
    for (Benchmark b : caseStudySuite()) {
        const Workload wl = makeWorkload(b, 8);
        EXPECT_EQ(wl.taskCount(), 24u);
        EXPECT_EQ(wl.instances().size(), 8u);
        EXPECT_EQ(wl.edges().size(), 16u);
    }
}

TEST(Benchmarks, StageRolesAndProfilesSane)
{
    for (Benchmark b : caseStudySuite()) {
        const Workload wl = makeWorkload(b, 2);
        for (const auto &task : wl.tasks()) {
            EXPECT_GT(task.issueDemand, 0.0);
            EXPECT_LE(task.issueDemand, 1.0);
            EXPECT_GE(task.loadStoreFraction, 0.0);
            EXPECT_LE(task.loadStoreFraction, 1.0);
            EXPECT_GT(task.instructionsPerPacket, 0.0);
            EXPECT_GT(task.l1iFootprintKb, 0.0);
        }
        EXPECT_EQ(wl.tasks()[0].role, StageRole::Receive);
        EXPECT_EQ(wl.tasks()[1].role, StageRole::Process);
        EXPECT_EQ(wl.tasks()[2].role, StageRole::Transmit);
    }
}

TEST(Benchmarks, AhoCorasickSharesItsAutomaton)
{
    // All AC instances share the same automaton structure (same
    // keyword set), unlike the per-instance tables of IPFwd.
    const Workload ac = makeWorkload(Benchmark::AhoCorasick, 4);
    std::uint32_t shared_id = 0;
    for (const auto &task : ac.tasks()) {
        if (task.role == StageRole::Process) {
            if (shared_id == 0)
                shared_id = task.sharedDataId;
            EXPECT_EQ(task.sharedDataId, shared_id);
        }
    }
    const Workload fwd = makeWorkload(Benchmark::IpfwdL1, 4);
    std::set<std::uint32_t> ids;
    for (const auto &task : fwd.tasks()) {
        if (task.role == StageRole::Process)
            ids.insert(task.sharedDataId);
    }
    EXPECT_EQ(ids.size(), 4u);
}

TEST(Benchmarks, MemoryVariantHasLargerTable)
{
    const Workload l1 = makeWorkload(Benchmark::IpfwdL1, 1);
    const Workload mem = makeWorkload(Benchmark::IpfwdMem, 1);
    EXPECT_LT(l1.tasks()[1].tableKb, 16.0);
    EXPECT_GT(mem.tasks()[1].tableKb, 1024.0);
}

TEST(Benchmarks, IntAddDemandsMoreIssueThanIntMul)
{
    const Workload add = makeWorkload(Benchmark::IpfwdIntAdd, 1);
    const Workload mul = makeWorkload(Benchmark::IpfwdIntMul, 1);
    EXPECT_GT(add.tasks()[1].issueDemand,
              1.5 * mul.tasks()[1].issueDemand);
}

TEST(Benchmarks, IpsecUsesTheCryptoUnit)
{
    // Extension workload: the P stage is the only one in the library
    // with a non-zero crypto fraction.
    const Workload ipsec = makeWorkload(Benchmark::IpsecEsp, 2);
    EXPECT_GT(ipsec.tasks()[1].cryptoFraction, 0.5);
    for (Benchmark b : caseStudySuite()) {
        const Workload wl = makeWorkload(b, 1);
        for (const auto &task : wl.tasks())
            EXPECT_DOUBLE_EQ(task.cryptoFraction, 0.0);
    }
    EXPECT_EQ(benchmarkName(Benchmark::IpsecEsp), "IPsec-ESP");
}

TEST(Benchmarks, NamesEncodeInstanceCount)
{
    const Workload wl = makeWorkload(Benchmark::Stateful, 8);
    EXPECT_NE(wl.name().find("Stateful"), std::string::npos);
    EXPECT_NE(wl.name().find("8x3"), std::string::npos);
}

} // anonymous namespace
