/**
 * @file
 * Simulated engine tests: determinism, symmetry, bottleneck
 * semantics, noise behaviour and paper-scale calibration guards.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/baselines.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using core::Assignment;
using core::ContextId;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

EngineOptions
noiseless()
{
    EngineOptions options;
    options.noiseRelStdDev = 0.0;
    return options;
}

/** The hand-built near-ideal layout: instance i on core i, P stage
 *  alone in pipe 0, R and T sharing pipe 1. */
Assignment
structuredLayout(std::uint32_t instances)
{
    std::vector<ContextId> ctx(3 * instances);
    for (std::uint32_t i = 0; i < instances; ++i) {
        ctx[3 * i + 0] = (i * 2 + 1) * 4 + 0;   // R
        ctx[3 * i + 1] = (i * 2 + 0) * 4 + 0;   // P
        ctx[3 * i + 2] = (i * 2 + 1) * 4 + 1;   // T
    }
    return Assignment(t2, ctx);
}

TEST(SimulatedEngine, DeterministicWithoutNoise)
{
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8),
                           {}, noiseless());
    const Assignment a = structuredLayout(8);
    const double x = engine.measure(a);
    const double y = engine.measure(a);
    EXPECT_DOUBLE_EQ(x, y);
    EXPECT_DOUBLE_EQ(x, engine.deterministic(a));
}

TEST(SimulatedEngine, HardwareSymmetryInvariance)
{
    SimulatedEngine engine(makeWorkload(Benchmark::Stateful, 2),
                           {}, noiseless());
    // Same canonical structure on different physical hardware.
    const Assignment a(t2, {0, 1, 4, 8, 9, 12});
    const Assignment b(t2, {56, 57, 60, 16, 17, 20});
    ASSERT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_NEAR(engine.deterministic(a), engine.deterministic(b),
                1e-9);
}

TEST(SimulatedEngine, InstanceThroughputIsBottleneckBound)
{
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 2),
                           {}, noiseless());
    const Assignment a = structuredLayout(2);
    const auto per_instance = engine.instanceThroughputs(a);
    ASSERT_EQ(per_instance.size(), 2u);
    double total = 0.0;
    for (double pps : per_instance) {
        EXPECT_GT(pps, 0.0);
        total += pps;
    }
    EXPECT_NEAR(engine.deterministic(a), total, 1e-9);
}

TEST(SimulatedEngine, NoiseIsSmallAndFresh)
{
    EngineOptions options;
    options.noiseRelStdDev = 0.001;
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 2),
                           {}, options);
    const Assignment a = structuredLayout(2);
    const double base = engine.deterministic(a);
    std::set<double> values;
    double sum = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double v = engine.measure(a);
        values.insert(v);
        sum += v;
        EXPECT_NEAR(v, base, 0.01 * base);
    }
    EXPECT_GT(values.size(), 190u);   // fresh draws
    EXPECT_NEAR(sum / 200.0, base, 0.002 * base);
}

TEST(SimulatedEngine, CrossCoreQueuesCost)
{
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdIntAdd, 1),
                           {}, noiseless());
    // All three stages on one core vs on three different cores
    // (each task alone in a pipe in both cases).
    const Assignment local(t2, {0, 4, 1});
    const Assignment remote(t2, {0, 8, 16});
    EXPECT_GT(engine.deterministic(local),
              engine.deterministic(remote));
}

TEST(SimulatedEngine, PackedIsWorseThanStructured)
{
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8), {}, noiseless());
        const double structured =
            engine.deterministic(structuredLayout(8));
        const double packed = engine.deterministic(
            core::packedAssignment(t2, 24));
        EXPECT_GT(structured, packed) << benchmarkName(b);
    }
}

TEST(SimulatedEngine, CalibrationIpfwdBestScale)
{
    // Paper scale: ~0.85 MPPS per IPFwd-L1 instance at best, so the
    // 8-instance structured layout lands between 6 and 7.5 MPPS
    // (the Figure 6 threshold region is ~6.6 MPPS).
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8),
                           {}, noiseless());
    const double best = engine.deterministic(structuredLayout(8));
    EXPECT_GT(best, 6.0e6);
    EXPECT_LT(best, 7.5e6);
}

TEST(SimulatedEngine, CalibrationAssignmentSpreadInPaperBand)
{
    // Section 4.3: "performance variation of up to 49% between
    // different task assignments of the same workload". Check that
    // sampled spreads are substantial (>25%) for every benchmark.
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8), {}, noiseless());
        core::RandomAssignmentSampler sampler(t2, 24, 5);
        double lo = 1e300;
        double hi = 0.0;
        for (int i = 0; i < 300; ++i) {
            const double v = engine.measure(sampler.draw());
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        const double spread = (hi - lo) / hi;
        EXPECT_GT(spread, 0.10) << benchmarkName(b);
        EXPECT_LT(spread, 0.75) << benchmarkName(b);
    }
}

TEST(SimulatedEngine, CryptoPortPenalizesColocation)
{
    // Two IPsec P stages in the same core saturate the narrow SPU
    // port; separate cores have one port each.
    SimulatedEngine engine(makeWorkload(Benchmark::IpsecEsp, 2),
                           {}, noiseless());
    // R/T on cores 2/3; only the P placement varies.
    const Assignment same_core(t2,
        {16, 0, 17, 20, 4, 21});     // P stages: ctx 0 and 4 (core 0)
    const Assignment diff_core(t2,
        {16, 0, 17, 20, 8, 21});     // P stages: core 0 and core 1
    EXPECT_GT(engine.deterministic(diff_core),
              engine.deterministic(same_core) * 1.05);
}

TEST(SimulatedEngine, SecondsPerMeasurementMatchesPaper)
{
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 1));
    EXPECT_NEAR(engine.secondsPerMeasurement(), 1.5, 1e-12);
    EXPECT_NE(engine.name().find("IPFwd-L1"), std::string::npos);
}

TEST(MeteredEngine, CountsAndModelsTime)
{
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 1));
    core::MeteredEngine metered(engine);
    const Assignment a = structuredLayout(1);
    metered.measure(a);
    metered.measure(a);
    const core::EngineStats stats = metered.stats();
    EXPECT_EQ(stats.measurements, 2u);
    EXPECT_NEAR(stats.modeledSeconds, 3.0, 1e-12);
}

} // anonymous namespace
