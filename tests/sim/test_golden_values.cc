/**
 * @file
 * Golden-value pins for the simulated engines.
 *
 * The values below were captured from the engine as it stood BEFORE
 * the batch-first refactor (the same code now frozen verbatim in
 * sim/reference_solver.hh) with %.17g formatting, which round-trips
 * IEEE doubles exactly. Every comparison is EXPECT_EQ on doubles —
 * bit identity, not tolerance: the refactored engine is specified to
 * reproduce the original to the last ulp for every workload, seed
 * and thread count. If an intentional model change ever breaks these
 * pins, re-capture them in the same commit and say so; an unintended
 * mismatch is a determinism regression.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/cycle_sim.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;

struct GoldenCase
{
    Benchmark benchmark;
    std::uint32_t instances;
    std::uint64_t samplerSeed;
    double expected[3];
};

/** Captured 2026-08-07 from the pre-refactor SimulatedEngine
 *  (default ChipConfig, noise off, PartialFisherYates sampler on the
 *  UltraSPARC T2 topology, three consecutive draws). */
const GoldenCase kDeterministicGolden[] = {
    {Benchmark::IpfwdL1, 2, 11,
     {1610631.3292891947, 1610631.3292891947, 1617028.5219884655}},
    {Benchmark::IpfwdL1, 8, 22,
     {6032946.5316286599, 6059883.853029795, 5719964.2880232055}},
    {Benchmark::IpfwdMem, 8, 33,
     {5006465.250890784, 4754231.4229623917, 5085651.6955215428}},
    {Benchmark::AhoCorasick, 4, 44,
     {361673.7312095738, 362256.63903206686, 362799.76389530872}},
    {Benchmark::Stateful, 8, 55,
     {3561819.8998719328, 3579477.0910600945, 3069040.0920082536}},
    {Benchmark::IpsecEsp, 8, 66,
     {1823119.8701436191, 1777404.9410265314, 1796881.8578746337}},
    {Benchmark::PacketAnalyzer, 16, 77,
     {5894400.3486542804, 5037100.6867950307, 5891348.0253846031}},
    {Benchmark::IpfwdIntAdd, 20, 88,
     {5451220.7642083839, 6394311.1666419161, 5888422.8585179504}},
};

TEST(GoldenValues, DeterministicEngineMatchesPreRefactorCapture)
{
    const core::Topology t2 = core::Topology::ultraSparcT2();
    for (const GoldenCase &c : kDeterministicGolden) {
        Workload w = makeWorkload(c.benchmark, c.instances);
        EngineOptions noiseless;
        noiseless.noiseRelStdDev = 0.0;
        SimulatedEngine engine(w, {}, noiseless);
        core::RandomAssignmentSampler sampler(
            t2, w.taskCount(), c.samplerSeed,
            core::SamplingMethod::PartialFisherYates);
        for (int k = 0; k < 3; ++k) {
            const core::Assignment a = sampler.draw();
            EXPECT_EQ(c.expected[k], engine.deterministic(a))
                << benchmarkName(c.benchmark) << " x" << c.instances
                << " draw " << k;
        }
    }
}

/** Captured alongside the deterministic pins: IPFwd-L1 x8 with the
 *  default EngineOptions (noise 5e-4, seed 0x5eed), sampler seed 99,
 *  one measureBatch of 8 on a fresh engine. Pins the noise substream
 *  layout (per measurement index) as well as the model. */
const double kNoisyBatchGolden[8] = {
    5743361.200088108,  5422295.3880718164, 6258918.8098191647,
    5195916.5793650281, 5683491.0684964806, 5583004.0374348406,
    5559663.2088271622, 5493018.3484914666,
};

TEST(GoldenValues, NoisyBatchMatchesPreRefactorCapture)
{
    const core::Topology t2 = core::Topology::ultraSparcT2();
    Workload w = makeWorkload(Benchmark::IpfwdL1, 8);
    SimulatedEngine engine(w);
    core::RandomAssignmentSampler sampler(
        t2, w.taskCount(), 99,
        core::SamplingMethod::PartialFisherYates);
    const auto batch = sampler.drawSample(8);
    std::vector<double> out(batch.size());
    engine.measureBatch(batch, out);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(kNoisyBatchGolden[i], out[i]) << "item " << i;
}

struct CycleGoldenCase
{
    Benchmark benchmark;
    std::uint32_t instances;
    std::uint64_t samplerSeed;
    double expected[2];
};

/** Captured from the pre-refactor CycleSimEngine (20000 cycles,
 *  5000 warmup, default seed, default ChipConfig; two draws). */
const CycleGoldenCase kCycleGolden[] = {
    {Benchmark::IpfwdL1, 2, 101, {140000.0, 140000.0}},
    {Benchmark::IpfwdMem, 4, 202, {560000.0, 490000.0}},
    {Benchmark::Stateful, 8, 303, {840000.0, 700000.0}},
};

TEST(GoldenValues, CycleSimMatchesPreRefactorCapture)
{
    const core::Topology t2 = core::Topology::ultraSparcT2();
    for (const CycleGoldenCase &c : kCycleGolden) {
        Workload w = makeWorkload(c.benchmark, c.instances);
        CycleSimOptions opt;
        opt.cycles = 20000;
        opt.warmupCycles = 5000;
        CycleSimEngine engine(w, {}, opt);
        core::RandomAssignmentSampler sampler(
            t2, w.taskCount(), c.samplerSeed,
            core::SamplingMethod::PartialFisherYates);
        for (int k = 0; k < 2; ++k) {
            const core::Assignment a = sampler.draw();
            EXPECT_EQ(c.expected[k], engine.measure(a))
                << benchmarkName(c.benchmark) << " draw " << k;
        }
    }
}

} // anonymous namespace
