/**
 * @file
 * Cycle-approximate simulator tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/cycle_sim.hh"
#include "sim/engine.hh"
#include "stats/descriptive.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using core::Assignment;
using core::ContextId;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

Assignment
structuredLayout(std::uint32_t instances)
{
    std::vector<ContextId> ctx(3 * instances);
    for (std::uint32_t i = 0; i < instances; ++i) {
        ctx[3 * i + 0] = (i * 2 + 1) * 4 + 0;
        ctx[3 * i + 1] = (i * 2 + 0) * 4 + 0;
        ctx[3 * i + 2] = (i * 2 + 1) * 4 + 1;
    }
    return Assignment(t2, ctx);
}

TEST(CycleSim, DeterministicPerAssignment)
{
    CycleSimEngine engine(makeWorkload(Benchmark::IpfwdL1, 2));
    const Assignment a = structuredLayout(2);
    EXPECT_DOUBLE_EQ(engine.measure(a), engine.measure(a));
}

TEST(CycleSim, PositiveAndBoundedThroughput)
{
    CycleSimEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 3);
    for (int i = 0; i < 10; ++i) {
        const double pps = engine.measure(sampler.draw());
        EXPECT_GT(pps, 1e5);
        EXPECT_LT(pps, 2e7);
    }
}

TEST(CycleSim, AgreesWithAnalyticOnStructuredLayout)
{
    // The cross-validation anchor: both engines within ~10% on the
    // near-ideal assignment that dominates the EVT tail.
    CycleSimOptions options;
    options.cycles = 120000;
    options.warmupCycles = 30000;
    CycleSimEngine cycle(makeWorkload(Benchmark::IpfwdL1, 8), {},
                         options);
    EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    SimulatedEngine analytic(makeWorkload(Benchmark::IpfwdL1, 8), {},
                             noiseless);
    const Assignment ideal = structuredLayout(8);
    const double c = cycle.measure(ideal);
    const double a = analytic.deterministic(ideal);
    EXPECT_NEAR(c, a, 0.10 * a);
}

TEST(CycleSim, PackedPlacementIsWorse)
{
    CycleSimEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    const double structured = engine.measure(structuredLayout(8));
    std::vector<ContextId> packed_ctx(24);
    for (ContextId i = 0; i < 24; ++i)
        packed_ctx[i] = i;
    const double packed =
        engine.measure(Assignment(t2, packed_ctx));
    EXPECT_GT(structured, packed);
}

TEST(CycleSim, RanksAssignmentsLikeTheAnalyticModel)
{
    CycleSimEngine cycle(makeWorkload(Benchmark::IpfwdL1, 8));
    EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    SimulatedEngine analytic(makeWorkload(Benchmark::IpfwdL1, 8), {},
                             noiseless);
    core::RandomAssignmentSampler sampler(t2, 24, 4);
    std::vector<double> c;
    std::vector<double> a;
    for (int i = 0; i < 40; ++i) {
        const auto assignment = sampler.draw();
        c.push_back(cycle.measure(assignment));
        a.push_back(analytic.deterministic(assignment));
    }
    EXPECT_GT(stats::pearsonCorrelation(c, a), 0.4);
}

TEST(CycleSim, MemoryBoundVariantIsSlower)
{
    CycleSimEngine l1(makeWorkload(Benchmark::IpfwdL1, 4));
    CycleSimEngine mem(makeWorkload(Benchmark::IpfwdMem, 4));
    const Assignment layout = structuredLayout(4);
    EXPECT_GT(l1.measure(layout), mem.measure(layout));
}

TEST(CycleSim, ModeledSecondsMatchSimulatedInterval)
{
    CycleSimOptions options;
    options.cycles = 140000;
    options.warmupCycles = 14000;
    CycleSimEngine engine(makeWorkload(Benchmark::IpfwdL1, 1), {},
                          options);
    // 154000 cycles at 1.4 GHz = 110 microseconds.
    EXPECT_NEAR(engine.secondsPerMeasurement(), 154000.0 / 1.4e9,
                1e-12);
    EXPECT_NE(engine.name().find("cyclesim"), std::string::npos);
}

TEST(CycleSim, QueueDepthLimitsDecoupling)
{
    // A deep queue lets the receive stage run ahead; a depth-1
    // queue serializes the pipeline. Throughput must not increase
    // when the queue shrinks.
    CycleSimOptions deep;
    deep.queueDepth = 64;
    CycleSimOptions shallow;
    shallow.queueDepth = 1;
    CycleSimEngine deep_engine(makeWorkload(Benchmark::IpfwdL1, 2),
                               {}, deep);
    CycleSimEngine shallow_engine(
        makeWorkload(Benchmark::IpfwdL1, 2), {}, shallow);
    const Assignment layout = structuredLayout(2);
    EXPECT_GE(deep_engine.measure(layout) * 1.02,
              shallow_engine.measure(layout));
}

} // anonymous namespace
