/**
 * @file
 * Contention solver tests: water-filling properties and the physical
 * invariants of the three-level model.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "sim/contention.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using core::Assignment;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();

TEST(Waterfill, UnderloadedGivesEveryoneTheirDemand)
{
    const auto alloc = waterfill({0.2, 0.3, 0.4}, 1.0);
    EXPECT_DOUBLE_EQ(alloc[0], 0.2);
    EXPECT_DOUBLE_EQ(alloc[1], 0.3);
    EXPECT_DOUBLE_EQ(alloc[2], 0.4);
}

TEST(Waterfill, OverloadedSharesFairly)
{
    const auto alloc = waterfill({1.0, 1.0, 1.0, 1.0}, 1.0);
    for (double a : alloc)
        EXPECT_DOUBLE_EQ(a, 0.25);
}

TEST(Waterfill, SmallDemandsSatisfiedFirst)
{
    // Max-min fairness: the 0.1 demand is fully served; the rest
    // split the remainder equally.
    const auto alloc = waterfill({0.1, 0.9, 0.9}, 1.0);
    EXPECT_DOUBLE_EQ(alloc[0], 0.1);
    EXPECT_NEAR(alloc[1], 0.45, 1e-12);
    EXPECT_NEAR(alloc[2], 0.45, 1e-12);
}

TEST(Waterfill, ConservationAndCaps)
{
    const std::vector<double> demands = {0.5, 0.3, 0.8, 0.05, 0.6};
    const auto alloc = waterfill(demands, 1.0);
    double total = 0.0;
    for (std::size_t i = 0; i < alloc.size(); ++i) {
        EXPECT_LE(alloc[i], demands[i] + 1e-12);
        EXPECT_GE(alloc[i], 0.0);
        total += alloc[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Waterfill, EmptyAndZeroCapacity)
{
    EXPECT_TRUE(waterfill({}, 1.0).empty());
    const auto alloc = waterfill({0.5, 0.5}, 0.0);
    EXPECT_DOUBLE_EQ(alloc[0], 0.0);
    EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

/** A minimal homogeneous profile for solver tests. */
TaskProfile
plainTask(double demand = 0.4)
{
    TaskProfile p;
    p.issueDemand = demand;
    p.loadStoreFraction = 0.3;
    p.l1dFootprintKb = 1.0;
    p.l1iFootprintKb = 2.0;
    p.l2FootprintKb = 8.0;
    p.codeId = 1;
    p.instructionsPerPacket = 500.0;
    return p;
}

TEST(Contention, SingleTaskGetsItsDemand)
{
    ContentionSolver solver({}, {plainTask(0.4)});
    const auto result = solver.solve(Assignment(t2, {0}));
    ASSERT_EQ(result.rates.size(), 1u);
    // Alone on the chip: only the tiny baseline miss stalls apply.
    EXPECT_NEAR(result.rates[0], 0.4, 0.02);
}

TEST(Contention, PipeSharingSplitsIssueBandwidth)
{
    std::vector<TaskProfile> tasks(4, plainTask(0.9));
    ContentionSolver solver({}, tasks);
    // All four in one pipe.
    const auto packed = solver.solve(Assignment(t2, {0, 1, 2, 3}));
    for (double r : packed.rates)
        EXPECT_NEAR(r, 0.25, 0.01);
    // Spread across four pipes: full demand (minus baseline).
    const auto spread =
        solver.solve(Assignment(t2, {0, 4, 8, 12}));
    for (double r : spread.rates)
        EXPECT_GT(r, 0.8);
}

TEST(Contention, SpreadingNeverHurts)
{
    // Rates under a fully packed placement are component-wise below
    // the fully spread placement.
    std::vector<TaskProfile> tasks(8, plainTask(0.6));
    ContentionSolver solver({}, tasks);
    const auto packed = solver.solve(
        Assignment(t2, {0, 1, 2, 3, 4, 5, 6, 7}));
    std::vector<core::ContextId> spread_ctx;
    for (std::uint32_t i = 0; i < 8; ++i)
        spread_ctx.push_back(i * 8);
    const auto spread = solver.solve(Assignment(t2, spread_ctx));
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_LE(packed.rates[i], spread.rates[i] + 1e-9) << i;
}

TEST(Contention, HardwareSymmetryInvariance)
{
    // Moving the whole structure to different cores leaves rates
    // unchanged.
    std::vector<TaskProfile> tasks = {plainTask(0.5), plainTask(0.7),
                                      plainTask(0.3)};
    ContentionSolver solver({}, tasks);
    const auto a = solver.solve(Assignment(t2, {0, 1, 8}));
    const auto b = solver.solve(Assignment(t2, {48, 49, 24}));
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(a.rates[i], b.rates[i], 1e-12) << i;
}

TEST(Contention, CacheCrowdingRaisesMissRates)
{
    // Two tasks with large private hot sets: same core vs separate
    // cores.
    TaskProfile heavy = plainTask(0.4);
    heavy.l1dFootprintKb = 6.0;
    heavy.codeId = 0;
    std::vector<TaskProfile> tasks = {heavy, heavy};
    ContentionSolver solver({}, tasks);
    const auto same_core = solver.solve(Assignment(t2, {0, 4}));
    const auto diff_core = solver.solve(Assignment(t2, {0, 8}));
    EXPECT_GT(same_core.l1dMissRate[0], diff_core.l1dMissRate[0]);
    EXPECT_LT(same_core.rates[0], diff_core.rates[0]);
}

TEST(Contention, SharedCodeDoesNotSelfThrash)
{
    // Two tasks running the SAME code image in one core share the
    // L1I footprint; distinct images double it.
    TaskProfile a = plainTask(0.4);
    a.l1iFootprintKb = 12.0;
    a.codeId = 7;
    TaskProfile b = a;
    b.codeId = 7;       // same image
    TaskProfile c = a;
    c.codeId = 8;       // different image

    ContentionSolver shared({}, {a, b});
    ContentionSolver distinct({}, {a, c});
    const auto s = shared.solve(Assignment(t2, {0, 4}));
    const auto d = distinct.solve(Assignment(t2, {0, 4}));
    EXPECT_GT(s.rates[0], d.rates[0]);
}

TEST(Contention, SharedDataCountedOncePerStructure)
{
    TaskProfile a = plainTask(0.4);
    a.l1dFootprintKb = 5.0;
    a.sharedDataId = 42;
    TaskProfile b = a;          // same structure
    TaskProfile c = a;
    c.sharedDataId = 43;        // different structure

    ContentionSolver shared({}, {a, b});
    ContentionSolver distinct({}, {a, c});
    const auto s = shared.solve(Assignment(t2, {0, 4}));
    const auto d = distinct.solve(Assignment(t2, {0, 4}));
    EXPECT_LE(s.l1dMissRate[0], d.l1dMissRate[0]);
    EXPECT_GE(s.rates[0], d.rates[0]);
}

TEST(Contention, BulkTableMissesGoToMemory)
{
    // A task with a DRAM-sized table sees L2 misses; one with a
    // small table does not.
    TaskProfile mem = plainTask(0.4);
    mem.tableKb = 16384.0;
    mem.randomAccessFraction = 0.01;
    mem.sharedDataId = 5;
    TaskProfile small = plainTask(0.4);
    small.tableKb = 4.0;
    small.randomAccessFraction = 0.01;
    small.sharedDataId = 6;

    ContentionSolver mem_solver({}, {mem});
    ContentionSolver small_solver({}, {small});
    const auto m = mem_solver.solve(Assignment(t2, {0}));
    const auto s = small_solver.solve(Assignment(t2, {0}));
    EXPECT_GT(m.l2MissRate[0], 0.5);
    EXPECT_LT(m.rates[0], s.rates[0]);
}

TEST(Contention, FpuPortSharedPerCore)
{
    TaskProfile fp = plainTask(0.9);
    fp.fpFraction = 0.8;
    std::vector<TaskProfile> tasks(2, fp);
    ContentionSolver solver({}, tasks);
    // Same core, different pipes: the FPU port binds
    // (2 x 0.9 x 0.8 = 1.44 > 1.0 port width).
    const auto same = solver.solve(Assignment(t2, {0, 4}));
    // Different cores: two FPUs.
    const auto diff = solver.solve(Assignment(t2, {0, 8}));
    EXPECT_LT(same.rates[0], diff.rates[0]);
    EXPECT_NEAR(same.rates[0] * 0.8 + same.rates[1] * 0.8, 1.0,
                0.05);
}

TEST(Contention, SolverConvergesQuickly)
{
    std::vector<TaskProfile> tasks(24, plainTask(0.5));
    ContentionSolver solver({}, tasks);
    std::vector<core::ContextId> ctx(24);
    std::iota(ctx.begin(), ctx.end(), 0);
    const auto result = solver.solve(Assignment(t2, ctx));
    EXPECT_LT(result.iterations, 40);
    for (double r : result.rates) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 0.5 + 1e-9);
    }
}

} // anonymous namespace
