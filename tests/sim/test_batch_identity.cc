/**
 * @file
 * Bit-identity of the batch-first measurement path.
 *
 * The frozen pre-refactor solver (sim/reference_solver.hh) is the
 * oracle: the production ContentionSolver/SimulatedEngine must
 * reproduce it to the last bit for every assignment — through the
 * allocation-free solveInto() with a reused Scratch, through the
 * serial batch path, and through core::ParallelEngine at any thread
 * count. Every comparison here is exact (EXPECT_EQ on doubles);
 * "close enough" would defeat the purpose, because the statistical
 * method's replayability contract is bit-level.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/parallel_engine.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/contention.hh"
#include "sim/cycle_sim.hh"
#include "sim/engine.hh"
#include "sim/reference_solver.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;

std::vector<core::Assignment>
sampleAssignments(const Workload &w, std::uint64_t seed,
                  std::size_t count)
{
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(), w.taskCount(), seed,
        core::SamplingMethod::PartialFisherYates);
    return sampler.drawSample(count);
}

void
expectResultsEqual(const ContentionResult &expected,
                   const ContentionResult &actual)
{
    ASSERT_EQ(expected.rates.size(), actual.rates.size());
    for (std::size_t t = 0; t < expected.rates.size(); ++t) {
        EXPECT_EQ(expected.rates[t], actual.rates[t]) << "task " << t;
        EXPECT_EQ(expected.l1dMissRate[t], actual.l1dMissRate[t]);
        EXPECT_EQ(expected.l2MissRate[t], actual.l2MissRate[t]);
    }
    EXPECT_EQ(expected.iterations, actual.iterations);
}

TEST(BatchIdentity, SolveMatchesReferenceAcrossBenchmarks)
{
    for (Benchmark b :
         {Benchmark::IpfwdL1, Benchmark::IpfwdMem,
          Benchmark::AhoCorasick, Benchmark::Stateful,
          Benchmark::PacketAnalyzer, Benchmark::IpsecEsp}) {
        const Workload w = makeWorkload(b, 8);
        const ChipConfig config;
        const ContentionSolver solver(config, w.tasks());
        for (const auto &a :
             sampleAssignments(w, 7001 + static_cast<int>(b), 8)) {
            expectResultsEqual(referenceSolve(config, w.tasks(), a),
                               solver.solve(a));
        }
    }
}

TEST(BatchIdentity, ReusedScratchMatchesFreshSolves)
{
    // One Scratch + one ContentionResult carried across many
    // different assignments must leave no residue: every solve is
    // identical to a solve on a brand-new workspace.
    const Workload w = makeWorkload(Benchmark::Stateful, 8);
    const ChipConfig config;
    const ContentionSolver solver(config, w.tasks());
    ContentionSolver::Scratch reused;
    ContentionResult result;
    for (const auto &a : sampleAssignments(w, 424242, 32)) {
        solver.solveInto(a, reused, result);
        expectResultsEqual(solver.solve(a), result);
    }
}

TEST(BatchIdentity, DeterministicMatchesReferenceEngine)
{
    for (Benchmark b : {Benchmark::IpfwdL1, Benchmark::IpfwdMem,
                        Benchmark::PacketAnalyzer}) {
        const Workload w = makeWorkload(b, 8);
        const ChipConfig config;
        EngineOptions noiseless;
        noiseless.noiseRelStdDev = 0.0;
        const SimulatedEngine engine(w, config, noiseless);
        for (const auto &a :
             sampleAssignments(w, 909 + static_cast<int>(b), 8)) {
            EXPECT_EQ(referenceDeterministic(w, config, a),
                      engine.deterministic(a));
        }
    }
}

TEST(BatchIdentity, InstanceThroughputsIntoMatchesReference)
{
    const Workload w = makeWorkload(Benchmark::IpfwdMem, 8);
    const ChipConfig config;
    EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    const SimulatedEngine engine(w, config, noiseless);
    SimulatedEngine::Scratch scratch;
    std::vector<double> reused_out;
    for (const auto &a : sampleAssignments(w, 5150, 16)) {
        engine.instanceThroughputsInto(a, scratch, reused_out);
        const auto expected =
            referenceInstanceThroughputs(w, config, a);
        ASSERT_EQ(expected.size(), reused_out.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(expected[i], reused_out[i]) << "instance " << i;
    }
}

/** Measures one batch on a fresh noisy engine through a
 *  ParallelEngine with the given thread count. */
std::vector<double>
measureNoisyBatch(const std::vector<core::Assignment> &batch,
                  unsigned threads)
{
    Workload w = makeWorkload(Benchmark::IpfwdL1, 8);
    SimulatedEngine engine(w);   // default noise on
    core::ParallelEngine parallel(engine, threads);
    std::vector<double> out(batch.size());
    parallel.measureBatch(batch, out);
    return out;
}

TEST(BatchIdentity, NoisyBatchesBitIdenticalAcrossThreadCounts)
{
    const Workload w = makeWorkload(Benchmark::IpfwdL1, 8);
    const auto batch = sampleAssignments(w, 31337, 64);

    // Serial reference: plain measureBatch on a fresh engine.
    std::vector<double> serial(batch.size());
    {
        Workload w2 = makeWorkload(Benchmark::IpfwdL1, 8);
        SimulatedEngine engine(w2);
        engine.measureBatch(batch, serial);
    }

    for (unsigned threads : {1u, 4u, 16u}) {
        const auto out = measureNoisyBatch(batch, threads);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(serial[i], out[i])
                << "item " << i << " at " << threads << " threads";
        }
    }
}

TEST(BatchIdentity, CycleSimParallelMatchesSerial)
{
    const Workload w = makeWorkload(Benchmark::IpfwdMem, 4);
    const auto batch = sampleAssignments(w, 2468, 8);
    CycleSimOptions opt;
    opt.cycles = 20000;
    opt.warmupCycles = 5000;

    // Serial reference: measure() calls on a fresh engine.
    std::vector<double> serial;
    {
        Workload w2 = makeWorkload(Benchmark::IpfwdMem, 4);
        CycleSimEngine engine(w2, {}, opt);
        for (const auto &a : batch)
            serial.push_back(engine.measure(a));
    }

    for (unsigned threads : {4u, 16u}) {
        Workload w2 = makeWorkload(Benchmark::IpfwdMem, 4);
        CycleSimEngine engine(w2, {}, opt);
        core::ParallelEngine parallel(engine, threads);
        std::vector<double> out(batch.size());
        parallel.measureBatch(batch, out);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(serial[i], out[i])
                << "item " << i << " at " << threads << " threads";
        }
    }
}

TEST(BatchIdentity, EngineReportsSolverAndScratchStats)
{
    Workload w = makeWorkload(Benchmark::IpfwdL1, 8);
    SimulatedEngine engine(w);
    const auto batch = sampleAssignments(w, 1212, 16);
    std::vector<double> out(batch.size());
    engine.measureBatch(batch, out);

    core::EngineStats stats;
    engine.collectStats(stats);
    EXPECT_EQ(16u, stats.solves);
    // iterations counts the refinement rounds past the initial pass;
    // lightly contended assignments legitimately converge at 0, but
    // across 16 random draws at least one needs a refinement round.
    EXPECT_GE(stats.solverIterations, 1u);
    EXPECT_GT(stats.solverIterationsPerSolve(), 0.0);
    EXPECT_LT(stats.solverIterationsPerSolve(), 100.0);
    // The serial batch leases one pooled workspace; nothing falls
    // back to the heap.
    EXPECT_GE(stats.scratchReuses, 1u);
    EXPECT_EQ(0u, stats.scratchFallbacks);
}

} // anonymous namespace
