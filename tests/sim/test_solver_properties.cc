/**
 * @file
 * Randomized property tests of the contention solver: conservation,
 * fairness and monotonicity under arbitrary demands and placements.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/sampler.hh"
#include "sim/contention.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using core::Assignment;
using core::Topology;
using stats::Rng;

const Topology t2 = Topology::ultraSparcT2();

TEST(WaterfillProperties, RandomizedInvariants)
{
    Rng rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(6);
        std::vector<double> demands;
        for (std::size_t i = 0; i < n; ++i)
            demands.push_back(rng.uniform() * 1.5);
        const double capacity = rng.uniform() * 2.0;
        const auto alloc = waterfill(demands, capacity);

        double total = 0.0;
        double total_demand = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            // Never exceeds the demand, never negative.
            ASSERT_GE(alloc[i], -1e-12);
            ASSERT_LE(alloc[i], demands[i] + 1e-12);
            total += alloc[i];
            total_demand += demands[i];
        }
        // Work conserving: uses min(capacity, total demand).
        ASSERT_NEAR(total, std::min(capacity, total_demand), 1e-9);

        // Max-min fairness: if i is throttled (alloc < demand), no
        // one else gets strictly more than i's allocation.
        for (std::size_t i = 0; i < n; ++i) {
            if (alloc[i] < demands[i] - 1e-9) {
                for (std::size_t j = 0; j < n; ++j)
                    ASSERT_LE(alloc[j], alloc[i] + 1e-9);
            }
        }
    }
}

TaskProfile
randomTask(Rng &rng, std::uint32_t id)
{
    TaskProfile p;
    p.issueDemand = 0.1 + 0.85 * rng.uniform();
    p.loadStoreFraction = 0.1 + 0.4 * rng.uniform();
    p.l1dFootprintKb = 0.5 + 3.0 * rng.uniform();
    p.l1iFootprintKb = 2.0 + 6.0 * rng.uniform();
    p.l2FootprintKb = 8.0 + 32.0 * rng.uniform();
    p.codeId = 1 + id % 4;
    p.instructionsPerPacket = 300.0 + 900.0 * rng.uniform();
    if (rng.uniform() < 0.3) {
        p.tableKb = 64.0 + 4096.0 * rng.uniform();
        p.randomAccessFraction = 0.001 + 0.004 * rng.uniform();
        p.sharedDataId = 100 + id;
    }
    return p;
}

TEST(SolverProperties, RatesBoundedByDemandOnRandomWorkloads)
{
    Rng rng(202);
    for (int trial = 0; trial < 30; ++trial) {
        const std::uint32_t n =
            2 + static_cast<std::uint32_t>(rng.uniformInt(22));
        std::vector<TaskProfile> tasks;
        for (std::uint32_t i = 0; i < n; ++i)
            tasks.push_back(randomTask(rng, i));
        ContentionSolver solver({}, tasks);
        core::RandomAssignmentSampler sampler(t2, n,
                                              300 + trial);
        const auto result = solver.solve(sampler.draw());
        ASSERT_EQ(result.rates.size(), n);
        for (std::uint32_t i = 0; i < n; ++i) {
            ASSERT_GT(result.rates[i], 0.0);
            ASSERT_LE(result.rates[i],
                      tasks[i].issueDemand + 1e-9);
            ASSERT_GE(result.l1dMissRate[i], 0.0);
            ASSERT_LE(result.l1dMissRate[i], 1.0);
            ASSERT_GE(result.l2MissRate[i], 0.0);
            ASSERT_LE(result.l2MissRate[i], 1.0);
        }
    }
}

TEST(SolverProperties, PipeIssueNeverOversubscribed)
{
    Rng rng(303);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint32_t n = 8 +
            static_cast<std::uint32_t>(rng.uniformInt(16));
        std::vector<TaskProfile> tasks;
        for (std::uint32_t i = 0; i < n; ++i)
            tasks.push_back(randomTask(rng, i));
        ContentionSolver solver({}, tasks);
        core::RandomAssignmentSampler sampler(t2, n, 400 + trial);
        const Assignment a = sampler.draw();
        const auto result = solver.solve(a);

        std::vector<double> pipe_rate(t2.pipes(), 0.0);
        for (std::uint32_t i = 0; i < n; ++i)
            pipe_rate[a.pipeOf(i)] += result.rates[i];
        for (double r : pipe_rate)
            ASSERT_LE(r, 1.0 + 1e-6);
    }
}

TEST(SolverProperties, AddingACoTenantNeverHelps)
{
    // Component-wise monotonicity: placing one more task in an
    // occupied pipe cannot raise any existing task's rate.
    Rng rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<TaskProfile> tasks;
        for (std::uint32_t i = 0; i < 4; ++i)
            tasks.push_back(randomTask(rng, i));

        // Three tasks spread out; the fourth joins task 0's pipe
        // (same core) vs a far-away pipe.
        ContentionSolver solver({}, tasks);
        const Assignment crowded(t2, {0, 8, 16, 1});
        const Assignment spread(t2, {0, 8, 16, 24});
        const auto c = solver.solve(crowded);
        const auto s = solver.solve(spread);
        for (int i = 0; i < 3; ++i)
            ASSERT_LE(c.rates[i], s.rates[i] + 1e-9) << trial;
    }
}

} // anonymous namespace
