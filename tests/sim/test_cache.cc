/**
 * @file
 * Set-associative cache model tests.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "stats/rng.hh"

namespace
{

using statsched::sim::SetAssociativeCache;
using statsched::stats::Rng;

TEST(Cache, ColdMissThenHit)
{
    SetAssociativeCache cache(8.0, 4, 16);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x100f));   // same 16 B line
    EXPECT_FALSE(cache.access(0x1010));  // next line
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, GeometryDerivedCorrectly)
{
    // 8 KB, 4-way, 16 B lines: 512 lines / 4 ways = 128 sets.
    SetAssociativeCache cache(8.0, 4, 16);
    EXPECT_EQ(cache.sets(), 128u);
}

TEST(Cache, LruEvictsOldestWithinSet)
{
    // Direct construction of conflicting lines: same set index,
    // different tags. Set stride = sets * line = 128*16 = 2048.
    SetAssociativeCache cache(8.0, 4, 16);
    const std::uint64_t stride = 128 * 16;
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(cache.access(i * stride));
    // All four resident.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.contains(i * stride));
    // Touch 0 to refresh it, then insert a 5th conflicting line:
    // line 1 (the LRU) must be evicted.
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(4 * stride));
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1 * stride));
}

TEST(Cache, ResidentWorkingSetHasNoSteadyMisses)
{
    SetAssociativeCache cache(8.0, 4, 16);
    // 4 KB working set walked cyclically: after the first pass,
    // everything hits.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t addr = 0; addr < 4096; addr += 16)
            cache.access(addr);
    }
    // 256 cold misses, then hits only.
    EXPECT_EQ(cache.misses(), 256u);
}

TEST(Cache, OversizedWorkingSetThrashes)
{
    SetAssociativeCache cache(8.0, 4, 16);
    // A 32 KB cyclic walk never fits: steady-state miss ratio ~1
    // under LRU with a cyclic pattern.
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t addr = 0; addr < 32768; addr += 16)
            cache.access(addr);
    }
    EXPECT_GT(cache.missRatio(), 0.9);
}

TEST(Cache, RandomAccessMissRatioTracksCapacityRatio)
{
    // Random accesses over a working set W >> C miss with
    // probability about 1 - C/W.
    SetAssociativeCache cache(8.0, 4, 16);
    Rng rng(5);
    const std::uint64_t span = 64 * 1024;
    // Warm up.
    for (int i = 0; i < 20000; ++i)
        cache.access(rng.uniformInt(span));
    const std::uint64_t warm_miss = cache.misses();
    const std::uint64_t warm_acc = cache.accesses();
    for (int i = 0; i < 40000; ++i)
        cache.access(rng.uniformInt(span));
    const double steady_ratio =
        static_cast<double>(cache.misses() - warm_miss) /
        static_cast<double>(cache.accesses() - warm_acc);
    EXPECT_NEAR(steady_ratio, 1.0 - 8.0 / 64.0, 0.05);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssociativeCache cache(8.0, 4, 16);
    cache.access(0x42);
    EXPECT_TRUE(cache.contains(0x42));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x42));
}

TEST(Cache, ContainsDoesNotPerturbState)
{
    SetAssociativeCache cache(8.0, 4, 16);
    cache.access(0x1000);
    const std::uint64_t accesses = cache.accesses();
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x9000));
    EXPECT_EQ(cache.accesses(), accesses);
}

} // anonymous namespace
