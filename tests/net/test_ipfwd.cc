/**
 * @file
 * IP forwarding kernel tests.
 */

#include <gtest/gtest.h>

#include "net/generator.hh"
#include "net/ipfwd.hh"

namespace
{

using namespace statsched::net;

TEST(Ipfwd, LookupIsDeterministic)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 16, 1);
    const NextHop a = table.lookup(0xc0a80001);
    const NextHop b = table.lookup(0xc0a80001);
    EXPECT_EQ(a.egressPort, b.egressPort);
    EXPECT_EQ(a.gatewayMac, b.gatewayMac);
}

TEST(Ipfwd, ModesAgreeOnDeterminismButDifferInStorage)
{
    const Ipv4ForwardingTable small(IpfwdMode::L1Resident, 16, 2);
    const Ipv4ForwardingTable large(IpfwdMode::MemoryBound, 16, 2);
    // The paper's design point: the small table fits in the 8 KB L1,
    // the large one dwarfs the 4 MB L2.
    EXPECT_LE(small.tableBytes(), 8u * 1024u);
    EXPECT_GT(large.tableBytes(), 4u * 1024u * 1024u);

    const NextHop x = large.lookup(0x01020304);
    const NextHop y = large.lookup(0x01020304);
    EXPECT_EQ(x.egressPort, y.egressPort);
}

TEST(Ipfwd, EgressPortsWithinRange)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 4, 3);
    for (std::uint32_t a = 0; a < 2000; ++a)
        EXPECT_LT(table.lookup(a * 2654435761u).egressPort, 4);
}

TEST(Ipfwd, LookupsSpreadAcrossPorts)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 8, 4);
    std::vector<int> hits(8, 0);
    for (std::uint32_t a = 0; a < 8000; ++a)
        ++hits[table.lookup(a * 7919u).egressPort];
    for (int h : hits)
        EXPECT_GT(h, 8000 / 8 / 4);
}

TEST(Ipfwd, ForwardRewritesFrame)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 16, 5);
    TrafficGenerator gen{TrafficConfig{}};
    Packet pkt = gen.next();
    const EthernetHeader eth_before = pkt.ethernet();
    const std::uint8_t ttl_before = pkt.ipv4().timeToLive;

    ASSERT_TRUE(table.forward(pkt));

    // Old destination MAC becomes the source; TTL decremented.
    EXPECT_EQ(pkt.ethernet().source, eth_before.destination);
    EXPECT_EQ(pkt.ipv4().timeToLive, ttl_before - 1);
    // Next hop MAC installed.
    const NextHop hop = table.lookup(pkt.ipv4().destination);
    EXPECT_EQ(pkt.ethernet().destination, hop.gatewayMac);
}

TEST(Ipfwd, ForwardDropsExpiredTtl)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 16, 6);
    TrafficGenerator gen{TrafficConfig{}};
    Packet pkt = gen.next();
    Ipv4Header ip = pkt.ipv4();
    ip.timeToLive = 0;
    pkt.setIpv4(ip);
    EXPECT_FALSE(table.forward(pkt));
}

TEST(Ipfwd, ForwardRejectsNonIp)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 16, 7);
    Packet junk{std::vector<std::uint8_t>(64, 0)};
    EXPECT_FALSE(table.forward(junk));
}

TEST(Ipfwd, LookupCounterAdvances)
{
    const Ipv4ForwardingTable table(IpfwdMode::L1Resident, 16, 8);
    EXPECT_EQ(table.lookupCount(), 0u);
    table.lookup(1);
    table.lookup(2);
    EXPECT_EQ(table.lookupCount(), 2u);
}

TEST(Ipfwd, MemoryBoundChainIsPermutation)
{
    // Forward many distinct addresses; the chain must never escape
    // the next-hop space and must not crash — exercised en masse.
    const Ipv4ForwardingTable table(IpfwdMode::MemoryBound, 16, 9);
    TrafficGenerator gen{TrafficConfig{}};
    int forwarded = 0;
    for (int i = 0; i < 500; ++i) {
        Packet pkt = gen.next();
        if (table.forward(pkt))
            ++forwarded;
    }
    EXPECT_EQ(forwarded, 500);
}

} // anonymous namespace
