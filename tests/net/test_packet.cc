/**
 * @file
 * Packet and checksum tests.
 */

#include <gtest/gtest.h>

#include "net/checksum.hh"
#include "net/generator.hh"
#include "net/packet.hh"

namespace
{

using namespace statsched::net;

Packet
samplePacket(bool tcp)
{
    TrafficConfig config;
    config.tcpFraction = tcp ? 1.0 : 0.0;
    config.seed = 99;
    TrafficGenerator gen(config);
    return gen.next();
}

TEST(Checksum, Rfc1071ReferenceVector)
{
    // Classic example from RFC 1071 materials.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, OddLengthPads)
{
    const std::uint8_t data[] = {0xab};
    EXPECT_EQ(internetChecksum(data, 1),
              static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(Checksum, IncrementalMatchesRecompute)
{
    std::uint8_t header[20] = {
        0x45, 0x00, 0x00, 0x54, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06,
        0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
    const std::uint16_t sum = internetChecksum(header, 20);
    header[10] = sum >> 8;
    header[11] = sum & 0xff;

    // Change TTL 0x40 -> 0x3f (word 8..9 is ttl|protocol).
    const std::uint16_t old_word = (0x40 << 8) | 0x06;
    const std::uint16_t new_word = (0x3f << 8) | 0x06;
    header[8] = 0x3f;
    const std::uint16_t patched =
        incrementalChecksumUpdate(sum, old_word, new_word);
    header[10] = 0;
    header[11] = 0;
    EXPECT_EQ(patched, internetChecksum(header, 20));
}

TEST(Packet, GeneratedTcpDecodesConsistently)
{
    const Packet pkt = samplePacket(true);
    ASSERT_TRUE(pkt.hasEthernet());
    ASSERT_TRUE(pkt.hasIpv4());
    ASSERT_TRUE(pkt.hasL4());

    const EthernetHeader eth = pkt.ethernet();
    EXPECT_EQ(eth.etherType, 0x0800);

    const Ipv4Header ip = pkt.ipv4();
    EXPECT_EQ(ip.versionIhl, 0x45);
    EXPECT_EQ(ip.protocol,
              static_cast<std::uint8_t>(IpProtocol::Tcp));
    EXPECT_EQ(ip.totalLength + ethernetHeaderBytes, pkt.size());

    const TcpHeader tcp = pkt.tcp();
    EXPECT_GE(tcp.sourcePort, 1024);
}

TEST(Packet, GeneratedIpv4ChecksumIsValid)
{
    // A valid IPv4 header checksums to zero over all 20 bytes.
    const Packet pkt = samplePacket(false);
    const std::uint8_t *ip = pkt.bytes().data() + ethernetHeaderBytes;
    EXPECT_EQ(internetChecksum(ip, ipv4HeaderBytes), 0);
}

TEST(Packet, HeaderSetGetRoundTrip)
{
    Packet pkt{std::vector<std::uint8_t>(
        ethernetHeaderBytes + ipv4HeaderBytes + udpHeaderBytes + 32,
        0)};

    EthernetHeader eth;
    eth.destination = {1, 2, 3, 4, 5, 6};
    eth.source = {7, 8, 9, 10, 11, 12};
    pkt.setEthernet(eth);

    Ipv4Header ip;
    ip.totalLength = ipv4HeaderBytes + udpHeaderBytes + 32;
    ip.timeToLive = 17;
    ip.protocol = static_cast<std::uint8_t>(IpProtocol::Udp);
    ip.source = 0x01020304;
    ip.destination = 0x05060708;
    pkt.setIpv4(ip);

    UdpHeader udp;
    udp.sourcePort = 1111;
    udp.destinationPort = 2222;
    udp.length = udpHeaderBytes + 32;
    pkt.setUdp(udp);

    EXPECT_EQ(pkt.ethernet().destination, eth.destination);
    EXPECT_EQ(pkt.ipv4().source, 0x01020304u);
    EXPECT_EQ(pkt.ipv4().timeToLive, 17);
    EXPECT_EQ(pkt.udp().destinationPort, 2222);
    EXPECT_EQ(pkt.payloadSize(), 32u);
}

TEST(Packet, TtlDecrementPatchesChecksumIncrementally)
{
    Packet pkt = samplePacket(true);
    const std::uint8_t ttl_before = pkt.ipv4().timeToLive;
    ASSERT_TRUE(pkt.decrementTtl());
    EXPECT_EQ(pkt.ipv4().timeToLive, ttl_before - 1);
    // Checksum must still validate.
    const std::uint8_t *ip = pkt.bytes().data() + ethernetHeaderBytes;
    EXPECT_EQ(internetChecksum(ip, ipv4HeaderBytes), 0);
}

TEST(Packet, TtlZeroIsDropped)
{
    Packet pkt = samplePacket(false);
    Ipv4Header ip = pkt.ipv4();
    ip.timeToLive = 0;
    pkt.setIpv4(ip);
    EXPECT_FALSE(pkt.decrementTtl());
}

TEST(Packet, TruncatedFramesRejected)
{
    Packet tiny{std::vector<std::uint8_t>(10, 0)};
    EXPECT_FALSE(tiny.hasEthernet());
    EXPECT_FALSE(tiny.hasIpv4());
    EXPECT_FALSE(tiny.hasL4());

    // Ethernet-only frame with non-IP ethertype.
    Packet arp{std::vector<std::uint8_t>(64, 0)};
    EthernetHeader eth;
    eth.etherType = 0x0806;
    arp.setEthernet(eth);
    EXPECT_TRUE(arp.hasEthernet());
    EXPECT_FALSE(arp.hasIpv4());
}

TEST(Packet, Ipv4ToStringFormatting)
{
    EXPECT_EQ(ipv4ToString(0xc0a80001), "192.168.0.1");
    EXPECT_EQ(ipv4ToString(0), "0.0.0.0");
    EXPECT_EQ(ipv4ToString(0xffffffff), "255.255.255.255");
}

} // anonymous namespace
