/**
 * @file
 * SPSC queue tests: single-thread semantics and a two-thread stress
 * run with checksum verification.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "net/spsc_queue.hh"

namespace
{

using statsched::net::SpscQueue;

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueue, FifoOrder)
{
    SpscQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.tryPush(i));
    int out = -1;
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(q.tryPop(out));
}

TEST(SpscQueue, FullQueueRejectsPush)
{
    SpscQueue<int> q(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(q.tryPush(i));
    EXPECT_FALSE(q.tryPush(99));
    int out;
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_TRUE(q.tryPush(99));
}

TEST(SpscQueue, SizeApproxTracksOccupancy)
{
    SpscQueue<int> q(16);
    EXPECT_TRUE(q.empty());
    q.tryPush(1);
    q.tryPush(2);
    EXPECT_EQ(q.sizeApprox(), 2u);
    int out;
    q.tryPop(out);
    EXPECT_EQ(q.sizeApprox(), 1u);
}

TEST(SpscQueue, MoveOnlyElements)
{
    SpscQueue<std::unique_ptr<int>> q(4);
    EXPECT_TRUE(q.tryPush(std::make_unique<int>(42)));
    std::unique_ptr<int> out;
    EXPECT_TRUE(q.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscQueue, TwoThreadStressPreservesAllElements)
{
    SpscQueue<std::uint64_t> q(256);
    constexpr std::uint64_t count = 200000;

    std::uint64_t consumer_sum = 0;
    std::uint64_t consumer_seen = 0;
    std::thread consumer([&q, &consumer_sum, &consumer_seen]() {
        std::uint64_t v;
        std::uint64_t expected = 0;
        bool ordered = true;
        while (consumer_seen < count) {
            if (q.tryPop(v)) {
                // FIFO: values arrive in production order.
                ordered &= (v == expected);
                ++expected;
                consumer_sum += v;
                ++consumer_seen;
            }
        }
        EXPECT_TRUE(ordered);
    });

    for (std::uint64_t i = 0; i < count;) {
        if (q.tryPush(i))
            ++i;
    }
    consumer.join();

    EXPECT_EQ(consumer_seen, count);
    EXPECT_EQ(consumer_sum, count * (count - 1) / 2);
}

} // anonymous namespace
