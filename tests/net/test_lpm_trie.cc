/**
 * @file
 * LPM trie tests, including a brute-force oracle property test.
 */

#include <gtest/gtest.h>

#include <map>

#include "net/lpm_trie.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::net;
using statsched::stats::Rng;

Route
route(Ipv4Address prefix, std::uint8_t len, std::uint16_t port)
{
    Route r;
    r.prefix = prefix;
    r.length = len;
    r.nextHop.egressPort = port;
    return r;
}

TEST(LpmTrie, EmptyTableMatchesNothing)
{
    LpmTrie trie;
    EXPECT_EQ(trie.size(), 0u);
    EXPECT_FALSE(trie.lookup(0x01020304).has_value());
}

TEST(LpmTrie, DefaultRouteMatchesEverything)
{
    LpmTrie trie;
    trie.insert(route(0, 0, 7));
    const auto hop = trie.lookup(0xdeadbeef);
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->egressPort, 7);
}

TEST(LpmTrie, LongestPrefixWins)
{
    LpmTrie trie;
    trie.insert(route(0, 0, 1));                    // default
    trie.insert(route(0x0a000000, 8, 2));           // 10/8
    trie.insert(route(0x0a010000, 16, 3));          // 10.1/16
    trie.insert(route(0x0a010200, 24, 4));          // 10.1.2/24

    EXPECT_EQ(trie.lookup(0xc0a80001)->egressPort, 1);
    EXPECT_EQ(trie.lookup(0x0a7f0001)->egressPort, 2);
    EXPECT_EQ(trie.lookup(0x0a01ff01)->egressPort, 3);
    EXPECT_EQ(trie.lookup(0x0a010203)->egressPort, 4);
}

TEST(LpmTrie, HostRoutes)
{
    LpmTrie trie;
    trie.insert(route(0x0a010203, 32, 9));
    EXPECT_EQ(trie.lookup(0x0a010203)->egressPort, 9);
    EXPECT_FALSE(trie.lookup(0x0a010204).has_value());
}

TEST(LpmTrie, InsertReplacesAndCounts)
{
    LpmTrie trie;
    EXPECT_FALSE(trie.insert(route(0x0a000000, 8, 1)));
    EXPECT_TRUE(trie.insert(route(0x0a000000, 8, 2)));
    EXPECT_EQ(trie.size(), 1u);
    EXPECT_EQ(trie.lookup(0x0a000001)->egressPort, 2);
}

TEST(LpmTrie, RemoveRestoresShorterMatch)
{
    LpmTrie trie;
    trie.insert(route(0x0a000000, 8, 1));
    trie.insert(route(0x0a010000, 16, 2));
    EXPECT_EQ(trie.lookup(0x0a010001)->egressPort, 2);
    EXPECT_TRUE(trie.remove(0x0a010000, 16));
    EXPECT_EQ(trie.lookup(0x0a010001)->egressPort, 1);
    EXPECT_FALSE(trie.remove(0x0a010000, 16));
    EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, FindExact)
{
    LpmTrie trie;
    trie.insert(route(0x0a000000, 8, 1));
    ASSERT_TRUE(trie.find(0x0a000000, 8).has_value());
    EXPECT_FALSE(trie.find(0x0a000000, 9).has_value());
    EXPECT_EQ(trie.find(0x0a000000, 8)->toString(), "10.0.0.0/8");
}

TEST(LpmTrie, DumpIsSortedAndComplete)
{
    LpmTrie trie;
    trie.insert(route(0xc0a80000, 16, 1));
    trie.insert(route(0x0a000000, 8, 2));
    trie.insert(route(0, 0, 3));
    const auto routes = trie.dump();
    ASSERT_EQ(routes.size(), 3u);
    EXPECT_EQ(routes[0].length, 0);
    EXPECT_EQ(routes[1].prefix, 0x0a000000u);
    EXPECT_EQ(routes[2].prefix, 0xc0a80000u);
}

TEST(LpmTrie, MatchesBruteForceOracle)
{
    Rng rng(55);
    LpmTrie trie;
    std::vector<Route> routes;

    // Random route set over a few /8 blocks with varied lengths.
    for (int i = 0; i < 300; ++i) {
        const std::uint8_t len =
            static_cast<std::uint8_t>(rng.uniformInt(25));
        const Ipv4Address mask = len == 0
            ? 0 : ~((1u << (32 - len)) - 1);
        const Ipv4Address prefix =
            (static_cast<Ipv4Address>(rng.next()) & mask) &
            0x3fffffff;
        Route r = route(prefix & mask, len,
                        static_cast<std::uint16_t>(i));
        // Skip duplicates (insert would replace; oracle keeps last).
        trie.insert(r);
        bool replaced = false;
        for (auto &existing : routes) {
            if (existing.prefix == r.prefix &&
                existing.length == r.length) {
                existing = r;
                replaced = true;
            }
        }
        if (!replaced)
            routes.push_back(r);
    }

    auto oracle = [&routes](Ipv4Address addr)
        -> std::optional<std::uint16_t> {
        int best_len = -1;
        std::uint16_t best_port = 0;
        for (const auto &r : routes) {
            const Ipv4Address mask = r.length == 0
                ? 0 : ~((1u << (32 - r.length)) - 1);
            if ((addr & mask) == r.prefix &&
                static_cast<int>(r.length) > best_len) {
                best_len = r.length;
                best_port = r.nextHop.egressPort;
            }
        }
        if (best_len < 0)
            return std::nullopt;
        return best_port;
    };

    for (int i = 0; i < 3000; ++i) {
        const Ipv4Address addr =
            static_cast<Ipv4Address>(rng.next()) & 0x3fffffff;
        const auto expected = oracle(addr);
        const auto actual = trie.lookup(addr);
        ASSERT_EQ(actual.has_value(), expected.has_value()) << addr;
        if (expected)
            EXPECT_EQ(actual->egressPort, *expected) << addr;
    }
}

} // anonymous namespace
