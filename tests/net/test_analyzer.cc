/**
 * @file
 * Packet analyzer tests.
 */

#include <gtest/gtest.h>

#include "net/analyzer.hh"
#include "net/generator.hh"

namespace
{

using namespace statsched::net;

TEST(Analyzer, LogsThePaperFieldSet)
{
    TrafficConfig config;
    config.tcpFraction = 1.0;
    config.seed = 5;
    TrafficGenerator gen(config);
    PacketAnalyzer analyzer;

    const Packet pkt = gen.next();
    const auto record = analyzer.process(pkt);
    ASSERT_TRUE(record.has_value());

    const EthernetHeader eth = pkt.ethernet();
    const Ipv4Header ip = pkt.ipv4();
    const TcpHeader tcp = pkt.tcp();
    EXPECT_EQ(record->macSource, eth.source);
    EXPECT_EQ(record->macDestination, eth.destination);
    EXPECT_EQ(record->timeToLive, ip.timeToLive);
    EXPECT_EQ(record->l3Protocol, ip.protocol);
    EXPECT_EQ(record->ipSource, ip.source);
    EXPECT_EQ(record->ipDestination, ip.destination);
    EXPECT_EQ(record->sourcePort, tcp.sourcePort);
    EXPECT_EQ(record->destinationPort, tcp.destinationPort);
}

TEST(Analyzer, CountsProtocols)
{
    TrafficConfig config;
    config.tcpFraction = 0.5;
    config.seed = 6;
    TrafficGenerator gen(config);
    PacketAnalyzer analyzer;
    for (int i = 0; i < 1000; ++i)
        analyzer.process(gen.next());
    const AnalyzerStats &stats = analyzer.stats();
    EXPECT_EQ(stats.captured, 1000u);
    EXPECT_EQ(stats.decoded, 1000u);
    EXPECT_EQ(stats.tcp + stats.udp, 1000u);
    EXPECT_GT(stats.tcp, 300u);
    EXPECT_GT(stats.udp, 300u);
    EXPECT_GT(stats.bytes, 64000u);
}

TEST(Analyzer, MalformedPacketsCounted)
{
    PacketAnalyzer analyzer;
    Packet junk{std::vector<std::uint8_t>(8, 0)};
    EXPECT_FALSE(analyzer.process(junk).has_value());
    EXPECT_EQ(analyzer.stats().malformed, 1u);
    EXPECT_EQ(analyzer.stats().logged, 0u);
}

TEST(Analyzer, ProtocolFilter)
{
    TrafficConfig config;
    config.tcpFraction = 0.5;
    config.seed = 7;
    TrafficGenerator gen(config);
    PacketAnalyzer analyzer;
    PacketFilter tcp_only;
    tcp_only.protocol = static_cast<std::uint8_t>(IpProtocol::Tcp);
    analyzer.addFilter(tcp_only);

    for (int i = 0; i < 500; ++i)
        analyzer.process(gen.next());
    const AnalyzerStats &stats = analyzer.stats();
    EXPECT_EQ(stats.filtered, stats.tcp);
    EXPECT_EQ(stats.logged, stats.tcp);
}

TEST(Analyzer, DestinationPrefixFilter)
{
    TrafficConfig config;
    config.destinationBase = 0xc0a80000;
    config.destinationCount = 512;   // 192.168.0.0 - 192.168.1.255
    config.seed = 8;
    TrafficGenerator gen(config);

    PacketAnalyzer analyzer;
    PacketFilter prefix;
    prefix.destinationPrefix = {{0xc0a80000, 24}};  // 192.168.0.0/24
    analyzer.addFilter(prefix);

    int expected = 0;
    for (int i = 0; i < 1000; ++i) {
        const Packet pkt = gen.next();
        if ((pkt.ipv4().destination & 0xffffff00) == 0xc0a80000)
            ++expected;
        analyzer.process(pkt);
    }
    EXPECT_EQ(analyzer.stats().logged,
              static_cast<std::uint64_t>(expected));
}

TEST(Analyzer, PortFilter)
{
    TrafficConfig config;
    config.portBase = 80;
    config.portCount = 4;
    config.seed = 9;
    TrafficGenerator gen(config);
    PacketAnalyzer analyzer;
    PacketFilter port;
    port.destinationPort = 81;
    analyzer.addFilter(port);
    for (int i = 0; i < 800; ++i)
        analyzer.process(gen.next());
    // Roughly a quarter of packets hit port 81.
    EXPECT_GT(analyzer.stats().logged, 120u);
    EXPECT_LT(analyzer.stats().logged, 280u);
}

TEST(Analyzer, MultipleFiltersAreDisjunctive)
{
    TrafficConfig config;
    config.tcpFraction = 0.5;
    config.seed = 10;
    TrafficGenerator gen(config);
    PacketAnalyzer analyzer;
    PacketFilter tcp_only;
    tcp_only.protocol = static_cast<std::uint8_t>(IpProtocol::Tcp);
    PacketFilter udp_only;
    udp_only.protocol = static_cast<std::uint8_t>(IpProtocol::Udp);
    analyzer.addFilter(tcp_only);
    analyzer.addFilter(udp_only);
    for (int i = 0; i < 300; ++i)
        analyzer.process(gen.next());
    EXPECT_EQ(analyzer.stats().logged, 300u);
}

TEST(Analyzer, RingWrapsOldestFirst)
{
    TrafficGenerator gen{TrafficConfig{}};
    PacketAnalyzer analyzer(8);
    std::vector<Ipv4Address> sources;
    for (int i = 0; i < 12; ++i) {
        const Packet pkt = gen.next();
        sources.push_back(pkt.ipv4().source);
        analyzer.process(pkt);
    }
    const auto log = analyzer.logContents();
    ASSERT_EQ(log.size(), 8u);
    // The ring holds the last 8 packets, oldest first.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(log[i].ipSource, sources[4 + i]) << i;
}

TEST(Analyzer, RingBeforeWrapKeepsInsertionOrder)
{
    TrafficGenerator gen{TrafficConfig{}};
    PacketAnalyzer analyzer(64);
    for (int i = 0; i < 10; ++i)
        analyzer.process(gen.next());
    EXPECT_EQ(analyzer.logContents().size(), 10u);
}

} // anonymous namespace
