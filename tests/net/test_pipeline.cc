/**
 * @file
 * Software pipeline tests.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "net/ipfwd.hh"
#include "net/pipeline.hh"

namespace
{

using namespace statsched::net;

ProcessFn
countingKernel(std::shared_ptr<std::uint64_t> counter)
{
    return [counter](Packet &) {
        ++*counter;
        return true;
    };
}

TEST(Pipeline, InlineRunDeliversRequestedPackets)
{
    auto counter = std::make_shared<std::uint64_t>(0);
    Pipeline pipeline({}, countingKernel(counter));
    const PipelineStats stats = pipeline.runInline(1000);
    EXPECT_GE(stats.transmitted, 1000u);
    EXPECT_EQ(stats.processed, *counter);
    EXPECT_GE(stats.received, stats.processed);
    EXPECT_GE(stats.processed, stats.transmitted);
    EXPECT_EQ(stats.dropped, 0u);
}

TEST(Pipeline, DroppedPacketsDoNotReachTransmit)
{
    // Kernel drops every second packet.
    auto flag = std::make_shared<bool>(false);
    Pipeline pipeline({}, [flag](Packet &) {
        *flag = !*flag;
        return *flag;
    });
    const PipelineStats stats = pipeline.runInline(500);
    EXPECT_GE(stats.dropped, 490u);
    EXPECT_NEAR(static_cast<double>(stats.dropped),
                static_cast<double>(stats.processed), 32.0);
}

TEST(Pipeline, RealForwardingKernelEndToEnd)
{
    auto table = std::make_shared<Ipv4ForwardingTable>(
        IpfwdMode::L1Resident, 16, 3);
    Pipeline pipeline({}, [table](Packet &p) {
        return table->forward(p);
    });
    const PipelineStats stats = pipeline.runInline(2000);
    EXPECT_GE(stats.transmitted, 2000u);
    EXPECT_EQ(stats.dropped, 0u);   // generator TTLs are >= 32
    EXPECT_EQ(table->lookupCount(), stats.processed);
}

TEST(Pipeline, ThreadedStagesStopCleanly)
{
    auto counter = std::make_shared<std::uint64_t>(0);
    Pipeline pipeline({}, countingKernel(counter));

    std::thread r([&pipeline]() {
        while (!pipeline.stopRequested())
            pipeline.receiveStep(32);
    });
    std::thread p([&pipeline]() {
        while (!pipeline.stopRequested())
            pipeline.processStep(32);
    });
    std::thread t([&pipeline]() {
        while (!pipeline.stopRequested())
            pipeline.transmitStep(32);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    pipeline.requestStop();
    r.join();
    p.join();
    t.join();

    const PipelineStats stats = pipeline.stats();
    EXPECT_GT(stats.transmitted, 0u);
    EXPECT_GE(stats.received, stats.processed);
    EXPECT_GE(stats.processed + stats.dropped, stats.transmitted);
}

TEST(Pipeline, BackpressureBoundsQueueGrowth)
{
    auto counter = std::make_shared<std::uint64_t>(0);
    Pipeline pipeline({}, countingKernel(counter), 64);
    // Run only the receive stage: the R->P queue fills and receive
    // saturates at the queue capacity.
    std::size_t total = 0;
    for (int i = 0; i < 100; ++i)
        total += pipeline.receiveStep(32);
    EXPECT_LE(total, 64u);
}

} // anonymous namespace
