/**
 * @file
 * Aho-Corasick tests, including a naive-search oracle property test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/aho_corasick.hh"
#include "net/keywords.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched::net;
using statsched::stats::Rng;

/** Brute-force oracle: all occurrences of all patterns. */
std::vector<Match>
naiveFindAll(const std::vector<std::string> &patterns,
             const std::string &text)
{
    std::vector<Match> matches;
    for (std::uint32_t pi = 0; pi < patterns.size(); ++pi) {
        const std::string &p = patterns[pi];
        if (p.size() > text.size())
            continue;
        for (std::size_t i = 0; i + p.size() <= text.size(); ++i) {
            if (text.compare(i, p.size(), p) == 0)
                matches.push_back({pi, i + p.size()});
        }
    }
    return matches;
}

void
sortMatches(std::vector<Match> &ms)
{
    std::sort(ms.begin(), ms.end(),
              [](const Match &a, const Match &b) {
                  return a.endOffset != b.endOffset
                      ? a.endOffset < b.endOffset
                      : a.patternIndex < b.patternIndex;
              });
}

TEST(AhoCorasick, ClassicPaperExample)
{
    // The example from Aho & Corasick (1975): {he, she, his, hers}.
    const AhoCorasick ac({"he", "she", "his", "hers"});
    auto matches = ac.findAll(std::string("ushers"));
    sortMatches(matches);
    // "ushers" contains she@4, he@4, hers@6.
    ASSERT_EQ(matches.size(), 3u);
    EXPECT_EQ(matches[0].endOffset, 4u);   // "he" or "she"
    EXPECT_EQ(matches[1].endOffset, 4u);
    EXPECT_EQ(matches[2].endOffset, 6u);   // "hers"
    EXPECT_EQ(matches[2].patternIndex, 3u);
}

TEST(AhoCorasick, OverlappingAndNestedPatterns)
{
    const AhoCorasick ac({"aa", "aaa"});
    auto matches = ac.findAll(std::string("aaaa"));
    // "aa" at ends 2,3,4; "aaa" at ends 3,4.
    EXPECT_EQ(matches.size(), 5u);
    EXPECT_EQ(ac.countMatches(
                  reinterpret_cast<const std::uint8_t *>("aaaa"), 4),
              5u);
}

TEST(AhoCorasick, PatternEqualsText)
{
    const AhoCorasick ac({"abc"});
    const auto matches = ac.findAll(std::string("abc"));
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].endOffset, 3u);
    EXPECT_TRUE(ac.containsAny(
        reinterpret_cast<const std::uint8_t *>("abc"), 3));
}

TEST(AhoCorasick, NoMatchInCleanText)
{
    const AhoCorasick ac({"needle", "pin"});
    const std::string hay = "plain haystack text without them";
    EXPECT_TRUE(ac.findAll(hay).empty());
    EXPECT_FALSE(ac.containsAny(
        reinterpret_cast<const std::uint8_t *>(hay.data()),
        hay.size()));
}

TEST(AhoCorasick, DuplicatePatternsKeepTheirIndices)
{
    const AhoCorasick ac({"ab", "ab"});
    auto matches = ac.findAll(std::string("ab"));
    sortMatches(matches);
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0].patternIndex, 0u);
    EXPECT_EQ(matches[1].patternIndex, 1u);
}

TEST(AhoCorasick, BinaryPatterns)
{
    const std::string pattern("\x00\x01\xff\x02", 4);
    const AhoCorasick ac({pattern});
    std::string text(64, '\x00');
    text.replace(10, 4, pattern);
    const auto matches = ac.findAll(text);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].endOffset, 14u);
}

TEST(AhoCorasick, MatchesNaiveOracleOnRandomTexts)
{
    Rng rng(31);
    const std::vector<std::string> patterns = {
        "ab", "abc", "ba", "aab", "bba", "cab", "abab", "c"};
    const AhoCorasick ac(patterns);
    for (int trial = 0; trial < 100; ++trial) {
        std::string text;
        const int len = 20 + static_cast<int>(rng.uniformInt(200));
        for (int i = 0; i < len; ++i) {
            text.push_back(
                static_cast<char>('a' + rng.uniformInt(3)));
        }
        auto expected = naiveFindAll(patterns, text);
        auto actual = ac.findAll(text);
        sortMatches(expected);
        sortMatches(actual);
        ASSERT_EQ(actual.size(), expected.size()) << text;
        for (std::size_t i = 0; i < actual.size(); ++i)
            EXPECT_TRUE(actual[i] == expected[i]) << text;
    }
}

TEST(AhoCorasick, DosKeywordSetBuildsAndMatches)
{
    const auto &keywords = dosKeywordSet();
    ASSERT_GE(keywords.size(), 60u);
    const AhoCorasick ac(keywords);
    EXPECT_GT(ac.stateCount(), keywords.size());
    EXPECT_GT(ac.automatonBytes(), 100000u);

    // Every keyword must match itself embedded in noise.
    for (std::uint32_t pi = 0; pi < keywords.size(); ++pi) {
        const std::string text =
            "xxxx" + keywords[pi] + "yyyy";
        const auto matches = ac.findAll(text);
        bool found = false;
        for (const Match &m : matches)
            found |= (m.patternIndex == pi);
        EXPECT_TRUE(found) << keywords[pi];
    }
}

TEST(AhoCorasick, CountMatchesAgreesWithFindAll)
{
    const AhoCorasick ac(dosKeywordSet());
    const std::string text =
        "GET / HTTP/1.1 slowloris /bin/sh wget http://x etc/passwd";
    const auto data =
        reinterpret_cast<const std::uint8_t *>(text.data());
    EXPECT_EQ(ac.countMatches(data, text.size()),
              ac.findAll(text).size());
}

} // anonymous namespace
