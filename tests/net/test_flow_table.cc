/**
 * @file
 * Stateful flow-table tests.
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/flow_table.hh"
#include "net/generator.hh"

namespace
{

using namespace statsched::net;

Packet
tcpPacket(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
          std::uint16_t dport, std::uint8_t flags)
{
    Packet pkt{std::vector<std::uint8_t>(
        ethernetHeaderBytes + ipv4HeaderBytes + tcpHeaderBytes + 16,
        0)};
    EthernetHeader eth;
    pkt.setEthernet(eth);
    Ipv4Header ip;
    ip.totalLength = ipv4HeaderBytes + tcpHeaderBytes + 16;
    ip.protocol = static_cast<std::uint8_t>(IpProtocol::Tcp);
    ip.source = src;
    ip.destination = dst;
    pkt.setIpv4(ip);
    TcpHeader tcp;
    tcp.sourcePort = sport;
    tcp.destinationPort = dport;
    tcp.flags = flags;
    pkt.setTcp(tcp);
    return pkt;
}

constexpr std::uint8_t kFin = 0x01;
constexpr std::uint8_t kSyn = 0x02;
constexpr std::uint8_t kRst = 0x04;
constexpr std::uint8_t kAck = 0x10;

TEST(FlowKey, ExtractedFromPacket)
{
    const Packet pkt = tcpPacket(1, 2, 10, 20, kSyn);
    const auto key = FlowKey::fromPacket(pkt);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->sourceIp, 1u);
    EXPECT_EQ(key->destinationIp, 2u);
    EXPECT_EQ(key->sourcePort, 10);
    EXPECT_EQ(key->destinationPort, 20);
    EXPECT_EQ(key->protocol,
              static_cast<std::uint8_t>(IpProtocol::Tcp));
}

TEST(FlowKey, HashIsDeterministicAndSpreads)
{
    FlowKey a{1, 2, 3, 4, 6};
    EXPECT_EQ(nprobeFlowHash(a), nprobeFlowHash(a));
    // Different flows mostly land in different buckets.
    std::set<std::uint32_t> buckets;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        FlowKey k{0x0a000000 + i * 7919, 0xc0a80000 + i,
                  static_cast<std::uint16_t>(1000 + i),
                  static_cast<std::uint16_t>(2000 + i), 6};
        buckets.insert(nprobeFlowHash(k) % FlowTable::kEntries);
    }
    EXPECT_GT(buckets.size(), 950u);
}

TEST(FlowTable, TracksPacketAndByteCounts)
{
    FlowTable table;
    const Packet pkt = tcpPacket(1, 2, 10, 20, kAck);
    table.update(pkt, 1);
    table.update(pkt, 2);
    table.update(pkt, 3);

    const auto key = FlowKey::fromPacket(pkt);
    const auto record = table.find(*key);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->packets, 3u);
    EXPECT_EQ(record->bytes, 3u * pkt.size());
    EXPECT_EQ(record->firstSeen, 1u);
    EXPECT_EQ(record->lastSeen, 3u);
    EXPECT_EQ(table.activeFlows(), 1u);
}

TEST(FlowTable, TcpStateMachineHandshakeAndClose)
{
    FlowTable table;
    const Packet syn = tcpPacket(1, 2, 10, 20, kSyn);
    const Packet synack = tcpPacket(1, 2, 10, 20, kSyn | kAck);
    const Packet data = tcpPacket(1, 2, 10, 20, kAck);
    const Packet fin1 = tcpPacket(1, 2, 10, 20, kFin | kAck);
    const Packet fin2 = tcpPacket(1, 2, 10, 20, kFin | kAck);

    EXPECT_EQ(table.update(syn, 1), FlowState::New);
    EXPECT_EQ(table.update(synack, 2), FlowState::Established);
    EXPECT_EQ(table.update(data, 3), FlowState::Established);
    EXPECT_EQ(table.update(fin1, 4), FlowState::Closing);
    EXPECT_EQ(table.update(fin2, 5), FlowState::Closed);
}

TEST(FlowTable, RstClosesImmediately)
{
    FlowTable table;
    table.update(tcpPacket(1, 2, 10, 20, kSyn), 1);
    EXPECT_EQ(table.update(tcpPacket(1, 2, 10, 20, kRst), 2),
              FlowState::Closed);
}

TEST(FlowTable, UdpFlowsEstablishOnSecondPacket)
{
    FlowTable table;
    Packet pkt{std::vector<std::uint8_t>(
        ethernetHeaderBytes + ipv4HeaderBytes + udpHeaderBytes + 8,
        0)};
    EthernetHeader eth;
    pkt.setEthernet(eth);
    Ipv4Header ip;
    ip.totalLength = ipv4HeaderBytes + udpHeaderBytes + 8;
    ip.protocol = static_cast<std::uint8_t>(IpProtocol::Udp);
    ip.source = 5;
    ip.destination = 6;
    pkt.setIpv4(ip);
    UdpHeader udp;
    udp.sourcePort = 53;
    udp.destinationPort = 53;
    pkt.setUdp(udp);

    EXPECT_EQ(table.update(pkt, 1), FlowState::New);
    EXPECT_EQ(table.update(pkt, 2), FlowState::Established);
}

TEST(FlowTable, CollisionEvictsOldFlow)
{
    // A 1-bucket table forces every distinct flow to collide.
    FlowTable table(1, 1);
    const Packet a = tcpPacket(1, 2, 10, 20, kAck);
    const Packet b = tcpPacket(3, 4, 30, 40, kAck);
    table.update(a, 1);
    table.update(b, 2);
    EXPECT_EQ(table.stats().newFlows, 2u);
    EXPECT_EQ(table.stats().evictions, 1u);
    // Flow A was recycled.
    EXPECT_FALSE(table.find(*FlowKey::fromPacket(a)).has_value());
    EXPECT_TRUE(table.find(*FlowKey::fromPacket(b)).has_value());
}

TEST(FlowTable, IgnoresPacketsWithoutL4)
{
    FlowTable table;
    Packet junk{std::vector<std::uint8_t>(20, 0)};
    EXPECT_FALSE(table.update(junk, 1).has_value());
    EXPECT_EQ(table.stats().ignored, 1u);
}

TEST(FlowTable, PaperSizedTableFootprint)
{
    FlowTable table;
    // 2^16 entries as in the paper; each record tens of bytes, so
    // the table is megabytes (L2-thrashing scale).
    EXPECT_GT(table.tableBytes(), 4u * 1024u * 1024u / 2u);
}

TEST(FlowTable, ConcurrentUpdatesAreConsistent)
{
    FlowTable table;
    TrafficConfig config;
    config.sourceCount = 64;
    config.destinationCount = 64;
    config.portCount = 8;
    config.seed = 77;
    // Pre-generate a shared packet set.
    TrafficGenerator gen(config);
    std::vector<Packet> packets = gen.burst(4000);

    const int threads = 4;
    std::vector<std::thread> workers;
    for (int w = 0; w < threads; ++w) {
        workers.emplace_back([&table, &packets, w]() {
            for (std::size_t i = w; i < packets.size(); i += 4)
                table.update(packets[i], i);
        });
    }
    for (auto &t : workers)
        t.join();

    // Every L4 packet was applied exactly once.
    std::uint64_t l4 = 0;
    for (const auto &p : packets)
        l4 += p.hasL4() ? 1 : 0;
    EXPECT_EQ(table.stats().updates + table.stats().ignored,
              packets.size());
    EXPECT_EQ(table.stats().updates, l4);
}

} // anonymous namespace
