/**
 * @file
 * Traffic generator tests.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/aho_corasick.hh"
#include "net/generator.hh"
#include "net/keywords.hh"

namespace
{

using namespace statsched::net;

TEST(Generator, DeterministicBySeed)
{
    TrafficConfig config;
    config.seed = 7;
    TrafficGenerator a(config);
    TrafficGenerator b(config);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next().bytes(), b.next().bytes());
}

TEST(Generator, AddressesAndPortsInConfiguredRanges)
{
    TrafficConfig config;
    config.sourceBase = 0x0a000000;
    config.sourceCount = 16;
    config.destinationBase = 0xc0a80000;
    config.destinationCount = 8;
    config.portBase = 5000;
    config.portCount = 10;
    TrafficGenerator gen(config);
    for (int i = 0; i < 500; ++i) {
        const Packet pkt = gen.next();
        const Ipv4Header ip = pkt.ipv4();
        EXPECT_GE(ip.source, config.sourceBase);
        EXPECT_LT(ip.source, config.sourceBase + 16);
        EXPECT_GE(ip.destination, config.destinationBase);
        EXPECT_LT(ip.destination, config.destinationBase + 8);
    }
}

TEST(Generator, ProtocolMixMatchesConfiguredFraction)
{
    TrafficConfig config;
    config.tcpFraction = 0.7;
    config.seed = 11;
    TrafficGenerator gen(config);
    int tcp = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const Packet pkt = gen.next();
        if (pkt.ipv4().protocol ==
            static_cast<std::uint8_t>(IpProtocol::Tcp))
            ++tcp;
    }
    EXPECT_NEAR(static_cast<double>(tcp) / n, 0.7, 0.03);
}

TEST(Generator, PayloadSizesWithinBounds)
{
    TrafficConfig config;
    config.payloadMin = 100;
    config.payloadMax = 200;
    TrafficGenerator gen(config);
    for (int i = 0; i < 300; ++i) {
        const Packet pkt = gen.next();
        EXPECT_GE(pkt.payloadSize(), 100u);
        EXPECT_LE(pkt.payloadSize(), 200u);
    }
}

TEST(Generator, KeywordFractionControlsMatches)
{
    TrafficConfig with;
    with.keywordFraction = 0.5;
    with.payloadMin = 200;
    with.payloadMax = 400;
    with.seed = 13;
    TrafficConfig without = with;
    without.keywordFraction = 0.0;

    const AhoCorasick automaton(dosKeywordSet());
    auto match_rate = [&automaton](TrafficGenerator &gen) {
        int matched = 0;
        for (int i = 0; i < 1000; ++i) {
            const Packet pkt = gen.next();
            if (automaton.containsAny(pkt.payload(),
                                      pkt.payloadSize()))
                ++matched;
        }
        return matched / 1000.0;
    };

    TrafficGenerator gen_with(with);
    TrafficGenerator gen_without(without);
    EXPECT_GT(match_rate(gen_with), 0.40);
    EXPECT_LT(match_rate(gen_without), 0.05);
}

TEST(Generator, BurstAndCounters)
{
    TrafficGenerator gen{TrafficConfig{}};
    const auto packets = gen.burst(64);
    EXPECT_EQ(packets.size(), 64u);
    EXPECT_EQ(gen.generated(), 64u);
}

TEST(Generator, IpIdentificationIncrements)
{
    TrafficGenerator gen{TrafficConfig{}};
    const Packet a = gen.next();
    const Packet b = gen.next();
    EXPECT_EQ(static_cast<std::uint16_t>(
                  a.ipv4().identification + 1),
              b.ipv4().identification);
}

} // anonymous namespace
