/**
 * @file
 * Wall-clock speedup of the parallel batch measurement engine.
 *
 * The paper's bottleneck is experimentation time: a 10k-sample
 * estimate is 10 000 independent measurements (Section 5.3). This
 * harness times the same generate-then-batch estimate serially and
 * on the ParallelEngine worker pool, verifies the results are
 * bit-identical, and reports the speedup. On an 8-core host the
 * parallel run is expected to be >= 3x faster; on a single-core
 * container the numbers simply document the overhead.
 *
 * Usage: bench_parallel_speedup [samples] [threads]
 *        (defaults: 10000 samples, hardware concurrency)
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "core/memoizing_engine.hh"
#include "core/parallel_engine.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;

double
seconds(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

struct TimedRun
{
    double wallSeconds = 0.0;
    core::EstimationResult result;
};

TimedRun
runEstimate(core::PerformanceEngine &engine, std::size_t samples)
{
    const core::Topology t2 = core::Topology::ultraSparcT2();
    core::OptimalPerformanceEstimator estimator(engine, t2, 24, 42);
    const auto start = std::chrono::steady_clock::now();
    TimedRun run;
    run.result = estimator.extend(samples);
    run.wallSeconds = seconds(start, std::chrono::steady_clock::now());
    return run;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t samples = argc > 1
        ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
        : 10000;
    const unsigned threads = argc > 2
        ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
        : std::max(1u, std::thread::hardware_concurrency());

    bench::banner("parallel speedup",
                  "serial vs parallel batch measurement of one "
                  "estimate");
    std::printf("samples %zu, pool threads %u, benchmark IPFwd-L1 "
                "x8 (24 tasks)\n", samples, threads);

    bench::section("serial (--threads 1)");
    sim::SimulatedEngine serial_sim(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    const TimedRun serial = runEstimate(serial_sim, samples);
    std::printf("wall %.3f s, best %s MPPS, UPB %s MPPS\n",
                serial.wallSeconds,
                bench::mpps(serial.result.bestObserved).c_str(),
                bench::mpps(serial.result.pot.upb).c_str());

    bench::section("parallel");
    sim::SimulatedEngine parallel_sim(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::ParallelEngine pool(parallel_sim, threads);
    const TimedRun parallel = runEstimate(pool, samples);
    std::printf("wall %.3f s, best %s MPPS, UPB %s MPPS\n",
                parallel.wallSeconds,
                bench::mpps(parallel.result.bestObserved).c_str(),
                bench::mpps(parallel.result.pot.upb).c_str());

    bench::section("memoized parallel");
    sim::SimulatedEngine memo_sim(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::ParallelEngine memo_pool(memo_sim, threads);
    core::MemoizingEngine memo(memo_pool);
    core::MeteredEngine meter(memo);
    const TimedRun memoized = runEstimate(meter, samples);
    const core::EngineStats stats = meter.stats();
    std::printf("wall %.3f s, cache hit rate %s (%llu distinct "
                "classes)\n", memoized.wallSeconds,
                bench::pct(stats.cacheHitRate()).c_str(),
                static_cast<unsigned long long>(stats.cacheMisses));

    bench::section("verdict");
    const bool identical =
        serial.result.sample == parallel.result.sample &&
        serial.result.bestObserved == parallel.result.bestObserved;
    std::printf("serial == parallel results: %s\n",
                identical ? "yes (bit-identical)" : "NO — BUG");
    if (parallel.wallSeconds > 0.0) {
        std::printf("speedup: %.2fx on %u thread(s)\n",
                    serial.wallSeconds / parallel.wallSeconds,
                    threads);
    }
    return identical ? 0 : 1;
}
