/**
 * @file
 * Ablation A2: GPD estimator comparison — the paper's Nelder-Mead
 * maximum likelihood vs the method of moments and probability
 * weighted moments, on (a) synthetic GPD tails with known
 * parameters and (b) the benchmark exceedances.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/gpd_fit.hh"
#include "stats/pot.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched;

const char *
estimatorName(stats::GpdEstimator e)
{
    switch (e) {
      case stats::GpdEstimator::MaximumLikelihood:
        return "MLE (paper)";
      case stats::GpdEstimator::MethodOfMoments:
        return "Moments";
      default:
        return "PWM";
    }
}

} // anonymous namespace

int
main()
{
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A2",
                  "GPD estimator comparison: MLE vs moments vs PWM");

    const stats::GpdEstimator estimators[] = {
        stats::GpdEstimator::MaximumLikelihood,
        stats::GpdEstimator::MethodOfMoments,
        stats::GpdEstimator::ProbabilityWeightedMoments,
    };

    bench::section("(a) synthetic GPD samples, m = 250, 200 "
                   "replications: mean abs error of xi-hat");
    std::printf("%-14s", "true xi");
    for (auto e : estimators)
        std::printf(" %14s", estimatorName(e));
    std::printf("\n");
    for (double xi : {-0.6, -0.4, -0.2, -0.1}) {
        std::printf("%-14.2f", xi);
        for (auto e : estimators) {
            stats::Rng rng(9000 + static_cast<int>(xi * 100));
            const stats::Gpd truth(xi, 1.0);
            double abs_err = 0.0;
            const int reps = 200;
            for (int r = 0; r < reps; ++r) {
                std::vector<double> ys;
                for (int i = 0; i < 250; ++i) {
                    ys.push_back(std::max(
                        1e-12,
                        truth.sampleFromUniform(rng.uniform())));
                }
                const auto fit = stats::fitGpd(ys, e);
                abs_err += std::fabs(fit.xi - xi);
            }
            std::printf(" %14.4f", abs_err / reps);
        }
        std::printf("\n");
    }

    bench::section("(b) benchmark exceedances (n = 5000, 24 "
                   "threads): UPB estimates");
    const Topology t2 = Topology::ultraSparcT2();
    std::printf("%-16s", "Benchmark");
    for (auto e : estimators)
        std::printf(" %14s", estimatorName(e));
    std::printf("\n");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::RandomAssignmentSampler sampler(t2, 24, 2002);
        std::vector<double> sample;
        for (int i = 0; i < 5000; ++i)
            sample.push_back(engine.measure(sampler.draw()));

        std::printf("%-16s", benchmarkName(b).c_str());
        for (auto e : estimators) {
            stats::PotOptions options;
            options.estimator = e;
            const auto est =
                stats::estimateOptimalPerformance(sample, options);
            std::printf(" %14s",
                        est.valid ? bench::mpps(est.upb).c_str()
                                  : "invalid");
        }
        std::printf("\n");
    }
    std::printf("\nagreement across estimators supports the "
                "robustness of the paper's choice.\n");
    return 0;
}
