/**
 * @file
 * Ablation A3: sensitivity of the UPB estimation to measurement
 * noise. The paper's measurements are stable (~1.5 s per run); this
 * sweep injects increasing relative noise into the simulated
 * measurements and tracks the estimate quality against the
 * noise-free exhaustive structured optimum.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A3",
                  "measurement-noise sensitivity of the UPB "
                  "estimate, IPFwd-L1 24 threads, n = 3000");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-12s %12s %12s %14s %12s\n", "noise sd",
                "best (MPPS)", "UPB (MPPS)", "CI width", "xi-hat");
    for (double noise : {0.0, 0.0005, 0.001, 0.002, 0.005, 0.01,
                         0.02}) {
        EngineOptions options;
        options.noiseRelStdDev = noise;
        options.noiseSeed = 31337;
        SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8),
                               {}, options);
        core::OptimalPerformanceEstimator estimator(engine, t2, 24,
                                                    555);
        const auto result = estimator.extend(3000);
        const auto &pot = result.pot;
        const double ci_width = std::isfinite(pot.upbUpper)
            ? (pot.upbUpper - pot.upbLower) / pot.upb
            : std::nan("");
        std::printf("%-12s %12s %12s %14s %12.3f\n",
                    bench::pct(noise).c_str(),
                    bench::mpps(result.bestObserved).c_str(),
                    pot.valid ? bench::mpps(pot.upb).c_str()
                              : "invalid",
                    std::isfinite(ci_width)
                        ? bench::pct(ci_width).c_str()
                        : "unbounded",
                    pot.fit.xi);
    }
    std::printf("\nsmall measurement noise leaves the estimate "
                "intact; large noise inflates the\napparent tail "
                "and widens (or unbounds) the interval — motivating "
                "the paper's\nstable 1.5 s measurements of three "
                "million packets.\n");
    return 0;
}
