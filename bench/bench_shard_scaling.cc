/**
 * @file
 * Throughput scaling of the sharded measurement fan-out.
 *
 * Spawns real statsched_worker subprocesses and drives the same
 * deterministic batch sequence through four configurations:
 *
 *  - inproc:    SimulatedEngine::measureBatchOutcome in-process —
 *               the single-process baseline and the bit reference;
 *  - shards N:  core::ShardedEngine over N worker subprocesses
 *               speaking the framed pipe protocol (N = 1, 2, 4);
 *  - chaos:     4 shards with a worker SIGKILLed on ~10% of the
 *               batches — the fault-tolerance price in throughput.
 *
 * Every configuration is also *verified*: outcome value bits and
 * statuses must match the in-process reference exactly — including
 * under the kills, where re-issue to survivors and respawned
 * replacements must reconstruct the same measurement indices. Any
 * mismatch makes the binary exit non-zero, so the bench doubles as
 * the fan-out determinism gate.
 *
 * Note on the absolute numbers: the simulated engine measures in
 * microseconds, so the pipe framing dominates and the fan-out is
 * *slower* than in-process here. The configuration the sharding
 * targets — real testbeds where one measurement costs milliseconds
 * to seconds — inverts that ratio; this bench prices the protocol
 * overhead and verifies the fault-tolerance machinery, it does not
 * claim a speedup on the simulator.
 *
 * Usage: bench_shard_scaling [--smoke] [--worker PATH]
 * PATH defaults to ../tools/statsched_worker next to this binary.
 * Writes BENCH_shard.json to the working directory.
 */

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "base/clock.hh"
#include "bench/harness.hh"
#include "core/sampler.hh"
#include "core/shard_protocol.hh"
#include "core/sharded_engine.hh"
#include "core/topology.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using WallClock = std::chrono::steady_clock;
using core::MeasurementOutcome;

const core::Topology t2 = core::Topology::ultraSparcT2();

double
seconds(WallClock::time_point from, WallClock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

bool
bitEqual(const MeasurementOutcome &a, const MeasurementOutcome &b)
{
    return a.status == b.status &&
        std::bit_cast<std::uint64_t>(a.value) ==
        std::bit_cast<std::uint64_t>(b.value);
}

/** One timed pass over the batch sequence; outcomes concatenated. */
struct ModeResult
{
    double measPerSec = 0.0;
    bool bitIdentical = true;
    core::EngineStats stats;
};

ModeResult
runMode(core::PerformanceEngine &engine,
        const std::vector<std::vector<core::Assignment>> &batches,
        const std::vector<MeasurementOutcome> &reference,
        core::ShardedEngine *chaosTarget, std::size_t killEvery)
{
    ModeResult result;
    std::vector<MeasurementOutcome> outcomes;
    std::size_t total = 0;
    for (const auto &batch : batches)
        total += batch.size();
    outcomes.reserve(total);

    const auto start = WallClock::now();
    for (std::size_t round = 0; round < batches.size(); ++round) {
        const auto &batch = batches[round];
        std::vector<MeasurementOutcome> out(batch.size());
        engine.measureBatchOutcome(batch, out);
        outcomes.insert(outcomes.end(), out.begin(), out.end());
        if (chaosTarget != nullptr && killEvery != 0 &&
            round % killEvery == killEvery - 1) {
            // External SIGKILL from the engine's point of view: the
            // transport dies, the slot still believes it is live.
            chaosTarget->disruptShard((round / killEvery) % 4);
        }
    }
    result.measPerSec =
        static_cast<double>(total) / seconds(start, WallClock::now());

    if (!reference.empty()) {
        if (outcomes.size() != reference.size())
            result.bitIdentical = false;
        for (std::size_t i = 0;
             result.bitIdentical && i < outcomes.size(); ++i) {
            if (!bitEqual(outcomes[i], reference[i]))
                result.bitIdentical = false;
        }
    }
    engine.collectStats(result.stats);
    return result;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string workerPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--worker") == 0 &&
                   i + 1 < argc) {
            workerPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--worker PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (workerPath.empty()) {
        workerPath = (std::filesystem::path(argv[0])
                          .parent_path().parent_path() /
                      "tools" / "statsched_worker")
                         .string();
    }

    const std::size_t batchSize = smoke ? 64 : 512;
    const std::size_t rounds = smoke ? 4 : 30;
    const std::size_t killEvery = smoke ? 2 : 10;

    bench::banner("shard scaling",
                  "sharded worker fan-out vs the in-process engine, "
                  "with and without worker kills");
    std::printf("worker %s\nbatch %zu x %zu rounds%s; "
                "measurements/sec, single timed pass\n",
                workerPath.c_str(), batchSize, rounds,
                smoke ? " [smoke]" : "");

    const sim::Workload workload =
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8);
    const std::uint32_t tasks = workload.taskCount();

    // The same deterministic batch sequence for every configuration.
    std::vector<std::vector<core::Assignment>> batches;
    batches.reserve(rounds);
    for (std::size_t round = 0; round < rounds; ++round) {
        core::RandomAssignmentSampler sampler(t2, tasks,
                                              4200 + round);
        batches.push_back(sampler.drawSample(batchSize));
    }

    // The worker's engine configuration, echoed as the handshake
    // fingerprint — mirrors what statsched iterate sends.
    const std::string engineConfig = "ipfwd-l1|8|0|0|0|0|1024023";
    const std::uint64_t fingerprint =
        core::shardConfigFingerprint(engineConfig);
    const std::vector<std::string> workerArgv = {
        workerPath,
        "--benchmark", "ipfwd-l1",
        "--instances", "8",
        "--config-hash", std::to_string(fingerprint),
    };
    base::SteadyClock clock;
    const auto shardedOptions = [&](std::size_t shards) {
        core::ShardedOptions options;
        options.shards = shards;
        options.requestDeadlineSeconds = 30.0;
        options.expected.configHash = fingerprint;
        options.expected.cores = t2.cores;
        options.expected.pipesPerCore = t2.pipesPerCore;
        options.expected.strandsPerPipe = t2.strandsPerPipe;
        options.expected.tasks = tasks;
        options.clock = &clock;
        return options;
    };

    bench::section("in-process baseline");
    sim::SimulatedEngine baseline(workload);
    const ModeResult inproc =
        runMode(baseline, batches, {}, nullptr, 0);
    std::printf("inproc            %10.0f meas/s\n",
                inproc.measPerSec);

    // Re-run the baseline's outcomes as the bit reference.
    std::vector<MeasurementOutcome> reference;
    {
        sim::SimulatedEngine ref(workload);
        for (const auto &batch : batches) {
            std::vector<MeasurementOutcome> out(batch.size());
            ref.measureBatchOutcome(batch, out);
            reference.insert(reference.end(), out.begin(),
                             out.end());
        }
    }

    bench::section("sharded fan-out");
    bool identical = true;
    struct Row
    {
        std::size_t shards;
        ModeResult result;
    };
    std::vector<Row> scaling;
    for (const std::size_t shards : {1, 2, 4}) {
        sim::SimulatedEngine inner(workload);
        core::ShardedEngine sharded(
            inner, core::makeProcessShardFactory(workerArgv, clock),
            shardedOptions(shards));
        const ModeResult r =
            runMode(sharded, batches, reference, nullptr, 0);
        sharded.shutdownWorkers();
        scaling.push_back({shards, r});
        identical = identical && r.bitIdentical;
        std::printf("shards %zu          %10.0f meas/s (%5.2fx)  "
                    "remote %llu  %s\n",
                    shards, r.measPerSec,
                    r.measPerSec / inproc.measPerSec,
                    static_cast<unsigned long long>(
                        r.stats.shardedMeasurements),
                    r.bitIdentical ? "bit-identical" : "MISMATCH");
    }

    bench::section("fault tolerance: worker kill on ~10% of batches");
    ModeResult chaos;
    {
        sim::SimulatedEngine inner(workload);
        core::ShardedEngine sharded(
            inner, core::makeProcessShardFactory(workerArgv, clock),
            shardedOptions(4));
        chaos = runMode(sharded, batches, reference, &sharded,
                        killEvery);
        sharded.shutdownWorkers();
        identical = identical && chaos.bitIdentical;
        std::printf(
            "shards 4 + kills  %10.0f meas/s (%5.2fx)  "
            "failures %llu  reissues %llu  respawns %llu  %s\n",
            chaos.measPerSec, chaos.measPerSec / inproc.measPerSec,
            static_cast<unsigned long long>(
                chaos.stats.shardFailures),
            static_cast<unsigned long long>(
                chaos.stats.shardReissues),
            static_cast<unsigned long long>(
                chaos.stats.shardRespawns),
            chaos.bitIdentical ? "bit-identical" : "MISMATCH");
    }

    FILE *json = std::fopen("BENCH_shard.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"benchmark\": \"shard_scaling\",\n");
        std::fprintf(json, "  \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(json,
                     "  \"batch\": %zu, \"rounds\": %zu, "
                     "\"tasks\": %u,\n",
                     batchSize, rounds, tasks);
        std::fprintf(json,
                     "  \"inproc_meas_per_sec\": %.0f,\n",
                     inproc.measPerSec);
        std::fprintf(json, "  \"scaling\": [\n");
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const Row &row = scaling[i];
            std::fprintf(
                json,
                "    {\"shards\": %zu, \"meas_per_sec\": %.0f, "
                "\"speedup_vs_inproc\": %.3f, "
                "\"remote_measurements\": %llu, "
                "\"bit_identical\": %s}%s\n",
                row.shards, row.result.measPerSec,
                row.result.measPerSec / inproc.measPerSec,
                static_cast<unsigned long long>(
                    row.result.stats.shardedMeasurements),
                row.result.bitIdentical ? "true" : "false",
                i + 1 < scaling.size() ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(
            json,
            "  \"chaos\": {\"shards\": 4, \"kill_every\": %zu, "
            "\"meas_per_sec\": %.0f, "
            "\"throughput_vs_inproc\": %.3f, "
            "\"failures\": %llu, \"reissues\": %llu, "
            "\"respawns\": %llu, \"degraded_batches\": %llu, "
            "\"bit_identical\": %s},\n",
            killEvery, chaos.measPerSec,
            chaos.measPerSec / inproc.measPerSec,
            static_cast<unsigned long long>(
                chaos.stats.shardFailures),
            static_cast<unsigned long long>(
                chaos.stats.shardReissues),
            static_cast<unsigned long long>(
                chaos.stats.shardRespawns),
            static_cast<unsigned long long>(
                chaos.stats.shardDegradedBatches),
            chaos.bitIdentical ? "true" : "false");
        std::fprintf(json, "  \"bit_identical\": %s\n",
                     identical ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_shard.json\n");
    }

    if (!identical) {
        std::printf("FAIL: sharded outcomes diverged from the "
                    "in-process reference (see MISMATCH rows)\n");
        return 1;
    }
    return 0;
}
