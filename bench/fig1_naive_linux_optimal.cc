/**
 * @file
 * Figure 1: Comparison of a naive, Linux-like, and optimal task
 * assignment for IPFwd-intadd and IPFwd-intmul (two 3-thread
 * instances, 6 threads; the ~1500-assignment space is enumerated
 * exhaustively, so the optimum is exact).
 */

#include <algorithm>
#include <cstdio>

#include "bench/harness.hh"
#include "core/baselines.hh"
#include "core/enumerator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Assignment;
    using core::Topology;

    bench::banner("Figure 1",
                  "naive vs Linux-like vs optimal assignment, "
                  "6-thread IPFwd variants");

    const Topology t2 = Topology::ultraSparcT2();
    const std::uint64_t naive_seed = 2012;
    const std::size_t naive_draws = 2000;

    std::printf("%-14s %12s %12s %12s | %11s %11s %11s\n",
                "Benchmark", "Naive(PPS)", "Linux(PPS)", "Opt(PPS)",
                "Linux-Naive", "Opt-Naive", "Opt-Linux");

    for (Benchmark b : {Benchmark::IpfwdIntAdd,
                        Benchmark::IpfwdIntMul}) {
        EngineOptions noiseless;
        noiseless.noiseRelStdDev = 0.0;
        SimulatedEngine engine(makeWorkload(b, 2), {}, noiseless);

        double optimal = 0.0;
        std::string best_str;
        core::AssignmentEnumerator enumerator(t2, 6);
        const std::uint64_t classes = enumerator.forEach(
            [&engine, &optimal, &best_str](const Assignment &a) {
                const double v = engine.deterministic(a);
                if (v > optimal) {
                    optimal = v;
                    best_str = a.toString();
                }
                return true;
            });

        const double linux_like = engine.deterministic(
            core::linuxLikeAssignment(t2, 6));
        const double naive = core::naiveExpectedPerformance(
            engine, t2, 6, naive_draws, naive_seed);

        std::printf("%-14s %12.0f %12.0f %12.0f | %10.1f%% "
                    "%10.1f%% %10.1f%%\n",
                    benchmarkName(b).c_str(), naive, linux_like,
                    optimal, 100.0 * (linux_like - naive) / naive,
                    100.0 * (optimal - naive) / naive,
                    100.0 * (optimal - linux_like) / optimal);
        std::printf("    exhaustive classes: %llu;  best "
                    "assignment: %s\n",
                    static_cast<unsigned long long>(classes),
                    best_str.c_str());
    }

    std::printf("\npaper: intadd Linux-Naive ~8%%, Opt-Naive ~22%%, "
                "Opt-Linux ~12%%;\n"
                "       intmul Linux-Naive ~2%%, Opt-Naive ~7%%,  "
                "Opt-Linux ~5%%.\n");
    std::printf("(naive = mean of %zu random assignments, "
                "seed %llu)\n", naive_draws,
                static_cast<unsigned long long>(naive_seed));
    return 0;
}
