/**
 * @file
 * Table 1: Number of different task assignments for applications
 * running on the UltraSPARC T2 processor.
 *
 * Columns, as in the paper: workload size; number of possible task
 * assignments (exact); time to run all assignments at 1 second each;
 * time to predict all assignments at 1 microsecond each.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/assignment_space.hh"
#include "num/duration.hh"

int
main()
{
    using namespace statsched;
    using core::AssignmentSpace;
    using core::Topology;
    using num::BigUint;
    using num::Duration;

    bench::banner("Table 1",
                  "number of task assignments on the UltraSPARC T2 "
                  "(8 cores x 2 pipes x 4 strands)");

    const AssignmentSpace space(Topology::ultraSparcT2());

    std::printf("%-8s  %-14s  %-22s  %-22s\n", "Tasks",
                "#Assignments", "Time to run all (1 s)",
                "Time to predict all (1 us)");
    for (unsigned tasks : {3u, 6u, 9u, 12u, 15u, 18u, 60u}) {
        const BigUint count = space.countAssignments(tasks);
        const Duration run_all = Duration::fromSeconds(count);
        const Duration predict_all =
            Duration::fromMicroseconds(count);
        std::printf("%-8u  %-14s  %-22s  %-22s\n", tasks,
                    count.toScientific(2).c_str(),
                    run_all.toString().c_str(),
                    predict_all.toString().c_str());
    }

    bench::section("exact counts (small workloads)");
    for (unsigned tasks = 1; tasks <= 9; ++tasks) {
        std::printf("  N(%u) = %s\n", tasks,
                    space.countAssignments(tasks).toString().c_str());
    }

    bench::section("paper anchors");
    std::printf("  N(3) = 11 (paper Section 2)           -> %s\n",
                space.countAssignments(3).toString().c_str());
    std::printf("  N(6) ~ 1500 (paper Figures 1/3)       -> %s\n",
                space.countAssignments(6).toString().c_str());
    const BigUint years =
        space.countAssignments(60) / BigUint(31557600u);
    std::printf("  60-task run-all ~ 1.75e51 years       -> %s "
                "years\n", years.toScientific(2).c_str());
    return 0;
}
