/**
 * @file
 * Ablation A1: sensitivity of the UPB estimate to the exceedance
 * fraction. The paper fixes the cap at 5% of the sample (citing
 * Gilli & Kellezi); this sweep shows how the point estimate and CI
 * behave from 1% to 10%, plus the LinearityScan alternative.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/pot.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A1",
                  "threshold (exceedance fraction) sensitivity, "
                  "IPFwd-L1 24 threads, n = 5000");

    const Topology t2 = Topology::ultraSparcT2();
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 1001);
    std::vector<double> sample;
    for (int i = 0; i < 5000; ++i)
        sample.push_back(engine.measure(sampler.draw()));

    std::printf("%-12s %8s %10s %12s %12s %12s %8s\n", "fraction",
                "m", "xi-hat", "UPB (MPPS)", "CI lo", "CI hi",
                "tail R^2");
    for (double fraction : {0.01, 0.02, 0.03, 0.05, 0.075, 0.10}) {
        stats::PotOptions options;
        options.threshold.maxExceedanceFraction = fraction;
        const auto est =
            stats::estimateOptimalPerformance(sample, options);
        std::printf("%-12s %8zu %10.3f %12s %12s %12s %8.3f\n",
                    bench::pct(fraction).c_str(),
                    est.exceedanceCount, est.fit.xi,
                    est.valid ? bench::mpps(est.upb).c_str()
                              : "invalid",
                    bench::mpps(est.upbLower).c_str(),
                    std::isfinite(est.upbUpper)
                        ? bench::mpps(est.upbUpper).c_str()
                        : "unbounded",
                    est.tailLinearity);
    }

    bench::section("LinearityScan policy (automated "
                   "Gilli-Kellezi selection)");
    stats::PotOptions scan;
    scan.threshold.policy = stats::ThresholdPolicy::LinearityScan;
    const auto est = stats::estimateOptimalPerformance(sample, scan);
    std::printf("  picked m = %zu, u = %s MPPS, UPB = %s MPPS, "
                "tail R^2 = %.3f\n",
                est.exceedanceCount,
                bench::mpps(est.threshold).c_str(),
                bench::mpps(est.upb).c_str(), est.tailLinearity);
    return 0;
}
