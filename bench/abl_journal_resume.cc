/**
 * @file
 * Ablation A12: cost of crash safety. Sweeps campaign length and
 * measures (a) the journal's size on disk — the write-ahead log is
 * the only durability overhead an uninterrupted campaign pays besides
 * the per-batch fsync — and (b) the wall-clock cost of resuming after
 * a mid-campaign kill, split into journal replay (fast-forwarding
 * the engine stack through recorded outcomes) versus measuring the
 * remainder fresh. Each resume is verified bit-identical to the
 * uninterrupted run: a resumed campaign that disagreed with the run
 * it continues would be worse than no resume at all.
 *
 * Accepts `--quick` to shrink the sweep for the CI smoke run.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "bench/harness.hh"
#include "core/campaign.hh"
#include "core/fault_injection.hh"
#include "core/parallel_engine.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::CampaignOptions;
using core::CampaignResult;
using core::Topology;

/** The substrate below the journal: Parallel(Fault(Sim)). */
struct Substrate
{
    sim::SimulatedEngine sim;
    core::FaultInjectingEngine faulty;
    core::ParallelEngine parallel;

    Substrate()
        : sim(sim::makeWorkload(sim::Benchmark::IpfwdL1, 8)),
          faulty(sim, faults()), parallel(faulty, 4)
    {
    }

    static core::FaultOptions
    faults()
    {
        core::FaultOptions f;
        f.transientRate = 0.05;
        return f;
    }
};

CampaignOptions
campaignOptions(std::size_t maxSample, const std::string &journal)
{
    CampaignOptions options;
    options.iterative.initialSample = 200;
    options.iterative.incrementSample = 100;
    options.iterative.acceptableLoss = 0.0001; // run to the cap
    options.iterative.maxSample = maxSample;
    options.journalPath = journal;
    options.configHash = 0xa12;
    options.resilient = true;
    options.memoize = true;
    return options;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    bench::banner("Ablation A12",
                  "journal size and resume overhead vs campaign "
                  "length, kill at ~60% of the journal");

    const Topology t2 = Topology::ultraSparcT2();
    const std::string dir =
        std::filesystem::temp_directory_path().string();
    const std::string fullPath = dir + "/statsched_a12_full.journal";
    const std::string tornPath = dir + "/statsched_a12_torn.journal";

    std::printf("%-8s %9s %9s %8s %9s %9s %9s %8s\n", "samples",
                "journal", "bytes/m", "fresh", "resume", "replayed",
                "fresh-m", "match");
    std::printf("%-8s %9s %9s %8s %9s %9s %9s %8s\n", "", "(KiB)",
                "", "(ms)", "(ms)", "", "", "");

    std::vector<std::size_t> sweep = quick
        ? std::vector<std::size_t>{400, 800}
        : std::vector<std::size_t>{500, 1000, 2000, 4000, 8000};
    bool allMatch = true;
    for (const std::size_t maxSample : sweep) {
        // Uninterrupted journaled run: the durability baseline.
        const auto freshStart = std::chrono::steady_clock::now();
        Substrate fresh;
        const CampaignResult baseline = core::runCampaign(
            fresh.parallel, t2, 24, 5,
            campaignOptions(maxSample, fullPath));
        const double freshMs = millisSince(freshStart);
        if (!baseline.ran) {
            std::fprintf(stderr, "baseline failed: %s\n",
                         baseline.journalError.c_str());
            return 1;
        }
        const auto journalBytes = static_cast<std::uint64_t>(
            std::filesystem::file_size(fullPath));

        // Kill at ~60%: truncate the journal mid-record and resume.
        std::filesystem::copy_file(
            fullPath, tornPath,
            std::filesystem::copy_options::overwrite_existing);
        std::filesystem::resize_file(tornPath,
                                     journalBytes * 6 / 10);
        const auto resumeStart = std::chrono::steady_clock::now();
        Substrate continuation;
        CampaignOptions resumeOptions =
            campaignOptions(maxSample, tornPath);
        resumeOptions.resume = true;
        const CampaignResult resumed = core::runCampaign(
            continuation.parallel, t2, 24, 5, resumeOptions);
        const double resumeMs = millisSince(resumeStart);

        const bool match = resumed.ran &&
            resumed.journalError.empty() &&
            resumed.search.final.pot.upb ==
                baseline.search.final.pot.upb &&
            resumed.search.final.bestObserved ==
                baseline.search.final.bestObserved &&
            resumed.search.totalSampled ==
                baseline.search.totalSampled;
        allMatch = allMatch && match;

        std::printf(
            "%-8zu %9.1f %9.1f %8.1f %9.1f %9llu %9llu %8s\n",
            maxSample, journalBytes / 1024.0,
            static_cast<double>(journalBytes) /
                static_cast<double>(baseline.recordedMeasurements),
            freshMs, resumeMs,
            static_cast<unsigned long long>(
                resumed.replayedMeasurements),
            static_cast<unsigned long long>(
                resumed.recordedMeasurements),
            match ? "yes" : "NO");
    }

    std::filesystem::remove(fullPath);
    std::filesystem::remove(tornPath);

    if (!allMatch) {
        std::fprintf(stderr, "\nFAIL: a resumed campaign diverged "
                             "from its uninterrupted baseline\n");
        return 1;
    }
    std::printf("\nevery resume was bit-identical to its "
                "uninterrupted baseline\n");
    return 0;
}
