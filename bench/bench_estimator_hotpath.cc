/**
 * @file
 * Wall-clock cost of the POT estimation hot path.
 *
 * The iterative algorithm (Section 4) re-estimates the UPB after every
 * sample extension, so the estimation pipeline itself — sort, threshold
 * selection, GPD fit, profile-likelihood CI — is on the critical path
 * of every experiment. This harness times the 10-round iterative
 * scenario (1000 initial measurements, nine +100 extensions) under
 * three pipelines:
 *
 *  - legacy:    a bench-local replica of the pre-optimization pipeline
 *               (full re-sort per round, cold two-log-per-observation
 *               MLE objective, unfused profile evaluations, tolerances
 *               1e-12/1e-10/1e-9);
 *  - fast-cold: PotAccumulator with warm starts disabled — verified
 *               here to be bit-identical to the from-scratch
 *               estimateOptimalPerformance() on every round;
 *  - fast-warm: PotAccumulator as shipped (warm-started fits).
 *
 * It also reports GPD fits/sec (cold vs warm) and ns per fused profile
 * evaluation for exceedance counts m in {20, 100, 500}, and writes the
 * results to BENCH_estimator.json in the working directory.
 *
 * Usage: bench_estimator_hotpath [--quick]
 */

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "stats/descriptive.hh"
#include "stats/gpd.hh"
#include "stats/mean_excess.hh"
#include "stats/nelder_mead.hh"
#include "stats/pot.hh"
#include "stats/pot_accumulator.hh"
#include "stats/profile_eval.hh"
#include "stats/rng.hh"
#include "stats/special_functions.hh"

namespace
{

using namespace statsched;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Bounded sample with survival (1 - x/cap)^2, i.e. a xi = -0.5 tail. */
std::vector<double>
boundedSample(double cap, std::size_t n, stats::Rng &rng)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(cap * (1.0 - std::sqrt(1.0 - rng.uniform())));
    return xs;
}

/** GPD(xi, sigma) exceedances by inverse-CDF sampling. */
std::vector<double>
gpdSample(double xi, double sigma, std::size_t m, stats::Rng &rng)
{
    std::vector<double> ys;
    ys.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
        const double u = rng.uniform();
        ys.push_back(sigma / xi * (std::pow(1.0 - u, -xi) - 1.0));
    }
    return ys;
}

// ---------------------------------------------------------------------
// Bench-local replica of the pre-optimization pipeline. Uses only the
// library's public API so it stays a faithful record of the old cost
// profile even as the library changes underneath.
// ---------------------------------------------------------------------

template <typename F>
double
legacyGoldenMax(F f, double lo, double hi, double tol, int max_iter)
{
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo;
    double b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

template <typename F>
double
legacyBisect(F f, double lo, double hi, double tol, int max_iter)
{
    double flo = f(lo);
    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if ((flo <= 0.0) == (fmid <= 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

/** Pre-optimization tail linearity: materialize the full mean-excess
 *  plot, then filter — the cost profile of the original
 *  MeanExcess::tailLinearity(). */
double
legacyTailLinearity(const stats::MeanExcess &me, double u)
{
    auto full = me.plot();
    std::vector<double> xs;
    std::vector<double> es;
    for (const auto &p : full) {
        if (p.first >= u) {
            xs.push_back(p.first);
            es.push_back(p.second);
        }
    }
    if (xs.size() < 2)
        return 0.0;
    return stats::linearLeastSquares(xs, es).rSquared;
}

/** Pre-optimization fixed-fraction selection: full re-sort of the
 *  cumulative sample plus the full-plot linearity diagnostic. */
stats::ThresholdSelection
legacySelect(const std::vector<double> &sample,
             const stats::ThresholdOptions &options)
{
    stats::MeanExcess me{sample};
    const auto &sorted = me.sorted();
    const std::size_t cap = std::max<std::size_t>(
        options.minExceedances,
        static_cast<std::size_t>(
            std::floor(options.maxExceedanceFraction *
                       static_cast<double>(sorted.size()))));
    stats::ThresholdSelection sel;
    const std::size_t cut = sorted.size() - cap;
    sel.threshold = sorted[cut - 1];
    for (std::size_t i = cut; i < sorted.size(); ++i) {
        const double y = sorted[i] - sel.threshold;
        if (y > 0.0)
            sel.exceedances.push_back(y);
    }
    sel.tailLinearity = legacyTailLinearity(me, sel.threshold);
    return sel;
}

/** Pre-optimization MLE: moment start, two-log Gpd::logLikelihood
 *  objective, default 5% simplex, 1e-10 simplex tolerances. */
stats::GpdFit
legacyFitGpd(const std::vector<double> &ys)
{
    stats::GpdFit start;
    const double m = stats::mean(ys);
    const double v = stats::variance(ys);
    const double ratio = m * m / v;
    start.xi = 0.5 * (1.0 - ratio);
    start.sigma = 0.5 * m * (1.0 + ratio);

    const double y_max = stats::maximum(ys);
    if (start.xi < 0.0 && -start.sigma / start.xi <= y_max)
        start.sigma = -start.xi * y_max * 1.05;
    if (start.sigma <= 0.0)
        start.sigma = y_max;

    auto objective = [&ys](const std::vector<double> &p) {
        if (p[1] <= 0.0)
            return std::numeric_limits<double>::infinity();
        const double ll = stats::Gpd(p[0], p[1]).logLikelihood(ys);
        if (!std::isfinite(ll))
            return std::numeric_limits<double>::infinity();
        return -ll;
    };

    stats::NelderMeadOptions options;
    options.maxIterations = 4000;
    auto result = stats::nelderMeadMinimize(
        objective, {start.xi, start.sigma}, options);

    stats::GpdFit fit;
    fit.xi = result.point[0];
    fit.sigma = result.point[1];
    fit.logLikelihood = -result.value;
    fit.converged = result.converged && std::isfinite(result.value);
    return fit;
}

/** Pre-optimization estimate: sort + select + cold fit + unfused CI
 *  with the original 1e-12 / 1e-10 / 1e-9 tolerances. */
stats::PotEstimate
legacyEstimate(const std::vector<double> &sample,
               const stats::PotOptions &options)
{
    constexpr double infinity =
        std::numeric_limits<double>::infinity();
    stats::PotEstimate est;
    est.confidenceLevel = options.confidenceLevel;
    est.maxObserved = stats::maximum(sample);

    auto selection = legacySelect(sample, options.threshold);
    est.threshold = selection.threshold;
    est.exceedanceCount = selection.exceedances.size();
    est.exceedanceRate =
        static_cast<double>(selection.exceedances.size()) /
        static_cast<double>(sample.size());
    est.tailLinearity = selection.tailLinearity;
    const std::vector<double> &ys = selection.exceedances;

    est.fit = legacyFitGpd(ys);
    const double y_max = stats::maximum(ys);
    if (est.fit.xi >= 0.0) {
        est.valid = false;
        est.upb = infinity;
        est.upbLower = est.maxObserved;
        est.upbUpper = infinity;
        return est;
    }
    est.upb = est.threshold - est.fit.sigma / est.fit.xi;
    est.valid = true;

    auto profile = [&ys](double b) {
        return stats::profileLogLikelihoodUpb(b, ys).first;
    };
    auto xi_unconstrained = [&ys](double b) {
        double s = 0.0;
        for (double y : ys)
            s += std::log(1.0 - y / b);
        return s / static_cast<double>(ys.size());
    };
    const double b_point = est.upb - est.threshold;
    const double b_lo = y_max * (1.0 + 1e-9);
    const double b_hi = std::max(b_point * 8.0, y_max * 16.0);

    double b_interior = b_lo;
    if (xi_unconstrained(b_lo) < -1.0) {
        b_interior = legacyBisect(
            [&xi_unconstrained](double b) {
                return xi_unconstrained(b) + 1.0;
            },
            b_lo, b_hi, y_max * 1e-12, 200);
    }
    const double b_hat = legacyGoldenMax(profile, b_interior, b_hi,
                                         y_max * 1e-10, 400);
    est.profileMaxLogLik = profile(b_hat);

    const double cut = est.profileMaxLogLik -
        0.5 * stats::chiSquaredQuantile(options.confidenceLevel, 1.0);
    auto above_cut = [&profile, cut](double b) {
        return profile(b) - cut;
    };

    if (above_cut(b_lo) >= 0.0) {
        est.upbLower = est.maxObserved;
    } else {
        const double b_root = legacyBisect(above_cut, b_lo, b_hat,
                                           y_max * 1e-9, 200);
        est.upbLower = std::max(est.threshold + b_root,
                                est.maxObserved);
    }

    double b_up = std::max(b_hat * 2.0, y_max * 2.0);
    bool bounded = false;
    for (int i = 0; i < 60; ++i) {
        if (above_cut(b_up) < 0.0) {
            bounded = true;
            break;
        }
        b_up *= 2.0;
    }
    if (bounded) {
        const double b_root = legacyBisect(above_cut, b_hat, b_up,
                                           y_max * 1e-9, 200);
        est.upbUpper = est.threshold + b_root;
    } else {
        est.upbUpper = infinity;
    }
    return est;
}

// ---------------------------------------------------------------------

bool
bitEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

bool
bitIdentical(const stats::PotEstimate &a, const stats::PotEstimate &b)
{
    return bitEqual(a.threshold, b.threshold) &&
        a.exceedanceCount == b.exceedanceCount &&
        bitEqual(a.fit.xi, b.fit.xi) &&
        bitEqual(a.fit.sigma, b.fit.sigma) &&
        bitEqual(a.fit.logLikelihood, b.fit.logLikelihood) &&
        a.fit.converged == b.fit.converged &&
        bitEqual(a.maxObserved, b.maxObserved) &&
        bitEqual(a.upb, b.upb) &&
        bitEqual(a.upbLower, b.upbLower) &&
        bitEqual(a.upbUpper, b.upbUpper) &&
        bitEqual(a.confidenceLevel, b.confidenceLevel) &&
        bitEqual(a.profileMaxLogLik, b.profileMaxLogLik) &&
        bitEqual(a.tailLinearity, b.tailLinearity) &&
        bitEqual(a.exceedanceRate, b.exceedanceRate) &&
        a.valid == b.valid;
}

struct ScenarioResult
{
    double legacySeconds = 0.0;
    double fastColdSeconds = 0.0;
    double fastWarmSeconds = 0.0;
    bool coldBitIdentical = true;
    double maxWarmUpbDelta = 0.0;
    std::size_t shortcutHits = 0;
};

/**
 * The 10-round iterative scenario under all three pipelines. Each
 * repeat times each pipeline once on the same measurement stream; the
 * reported time is the minimum over repeats (the standard way to strip
 * scheduler noise from a deterministic workload).
 */
ScenarioResult
runScenario(std::size_t initial, std::size_t extension,
            std::size_t rounds, int repeats)
{
    const stats::PotOptions options;
    ScenarioResult out;
    out.legacySeconds = std::numeric_limits<double>::infinity();
    out.fastColdSeconds = std::numeric_limits<double>::infinity();
    out.fastWarmSeconds = std::numeric_limits<double>::infinity();

    // One measurement stream shared by every pipeline and repeat.
    stats::Rng rng(1234);
    std::vector<std::vector<double>> batches;
    batches.push_back(boundedSample(100.0, initial, rng));
    for (std::size_t r = 1; r < rounds; ++r)
        batches.push_back(boundedSample(100.0, extension, rng));

    for (int rep = 0; rep < repeats; ++rep) {
        // Legacy: from-scratch estimate per round.
        {
            std::vector<double> cumulative;
            const auto start = Clock::now();
            for (const auto &batch : batches) {
                cumulative.insert(cumulative.end(), batch.begin(),
                                  batch.end());
                auto est = legacyEstimate(cumulative, options);
                (void)est;
            }
            out.legacySeconds = std::min(
                out.legacySeconds, seconds(start, Clock::now()));
        }

        // Fast, cold fits.
        {
            stats::PotAccumulator acc(options, false);
            const auto start = Clock::now();
            for (const auto &batch : batches) {
                acc.extend(batch);
                auto est = acc.estimate();
                (void)est;
            }
            out.fastColdSeconds = std::min(
                out.fastColdSeconds, seconds(start, Clock::now()));
        }

        // Fast, warm fits (the shipped default).
        {
            stats::PotAccumulator acc(options, true);
            const auto start = Clock::now();
            for (const auto &batch : batches) {
                acc.extend(batch);
                auto est = acc.estimate();
                (void)est;
            }
            out.fastWarmSeconds = std::min(
                out.fastWarmSeconds, seconds(start, Clock::now()));
        }
    }

    // Verification passes (untimed): the cold incremental estimate
    // must match the from-scratch pipeline bit for bit on every round,
    // and warm point estimates must agree with cold to CI-noise level.
    {
        std::vector<double> cumulative;
        stats::PotAccumulator check(options, false);
        stats::PotAccumulator warm(options, true);
        for (const auto &batch : batches) {
            cumulative.insert(cumulative.end(), batch.begin(),
                              batch.end());
            check.extend(batch);
            warm.extend(batch);
            const auto inc = check.estimate();
            const auto scratch =
                stats::estimateOptimalPerformance(cumulative, options);
            if (!bitIdentical(inc, scratch))
                out.coldBitIdentical = false;
            const auto w = warm.estimate();
            if (w.valid && inc.valid) {
                out.maxWarmUpbDelta =
                    std::max(out.maxWarmUpbDelta,
                             std::fabs(w.upb - inc.upb));
            }
        }
        out.shortcutHits = check.shortcutHits();
    }
    return out;
}

struct FitRates
{
    double coldPerSec = 0.0;
    double warmPerSec = 0.0;
    double profileEvalNs = 0.0;
};

FitRates
fitThroughput(std::size_t m, int iters)
{
    stats::Rng rng(99 + m);
    const auto ys = gpdSample(-0.3, 1.0, m, rng);

    FitRates out;
    {
        const auto start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            auto fit = stats::fitGpd(ys);
            (void)fit;
        }
        out.coldPerSec = iters / seconds(start, Clock::now());
    }
    {
        const auto warm = stats::fitGpd(ys);
        const auto start = Clock::now();
        for (int i = 0; i < iters; ++i) {
            auto fit = stats::fitGpd(
                ys, stats::GpdEstimator::MaximumLikelihood, &warm);
            (void)fit;
        }
        out.warmPerSec = iters / seconds(start, Clock::now());
    }
    {
        // Distinct b per evaluation so the memo never hits: this is
        // the cost of one fused exceedance pass.
        const double y_max = stats::maximum(ys);
        stats::ProfileEvaluator prof(ys);
        const int evals = iters * 50;
        double sink = 0.0;
        const auto start = Clock::now();
        for (int i = 0; i < evals; ++i)
            sink += prof.profile(y_max * (1.001 + 1e-7 * i));
        out.profileEvalNs =
            seconds(start, Clock::now()) * 1e9 / evals;
        if (!std::isfinite(sink))
            std::printf("unexpected non-finite profile sum\n");
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const int repeats = quick ? 1 : 5;
    const int fit_iters = quick ? 20 : 200;

    bench::banner("estimator hot path",
                  "incremental + fused + warm-started POT estimation "
                  "vs the pre-optimization pipeline");
    std::printf("scenario: 1000 initial + 9 x 100 extensions, "
                "%d repeat(s)%s\n", repeats, quick ? " [quick]" : "");

    bench::section("iterative 10-round scenario");
    const auto sc = runScenario(1000, 100, 10, repeats);
    const double speedup_cold = sc.legacySeconds / sc.fastColdSeconds;
    const double speedup_warm = sc.legacySeconds / sc.fastWarmSeconds;
    std::printf("legacy     %8.1f ms\n", sc.legacySeconds * 1e3);
    std::printf("fast cold  %8.1f ms   (%.2fx, bit-identical to "
                "from-scratch: %s)\n",
                sc.fastColdSeconds * 1e3, speedup_cold,
                sc.coldBitIdentical ? "yes" : "NO");
    std::printf("fast warm  %8.1f ms   (%.2fx, max |UPB - cold UPB| "
                "= %.3g, shortcut hits %zu/10)\n",
                sc.fastWarmSeconds * 1e3, speedup_warm,
                sc.maxWarmUpbDelta, sc.shortcutHits);

    bench::section("fit throughput and profile evaluation");
    std::printf("%6s %14s %14s %16s\n", "m", "cold fits/s",
                "warm fits/s", "profile eval ns");
    const std::size_t ms[] = {20, 100, 500};
    FitRates rates[3];
    for (int i = 0; i < 3; ++i) {
        rates[i] = fitThroughput(ms[i], fit_iters);
        std::printf("%6zu %14.0f %14.0f %16.1f\n", ms[i],
                    rates[i].coldPerSec, rates[i].warmPerSec,
                    rates[i].profileEvalNs);
    }

    // Machine-readable record of this run.
    FILE *json = std::fopen("BENCH_estimator.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"benchmark\": \"estimator_hotpath\",\n");
        std::fprintf(json, "  \"quick\": %s,\n",
                     quick ? "true" : "false");
        std::fprintf(json,
                     "  \"scenario\": {\"initial\": 1000, "
                     "\"extension\": 100, \"rounds\": 10, "
                     "\"repeats\": %d},\n", repeats);
        std::fprintf(json, "  \"pipelines\": {\n");
        std::fprintf(json, "    \"legacy_seconds\": %.6f,\n",
                     sc.legacySeconds);
        std::fprintf(json, "    \"fast_cold_seconds\": %.6f,\n",
                     sc.fastColdSeconds);
        std::fprintf(json, "    \"fast_warm_seconds\": %.6f,\n",
                     sc.fastWarmSeconds);
        std::fprintf(json, "    \"speedup_cold\": %.3f,\n",
                     speedup_cold);
        std::fprintf(json, "    \"speedup_warm\": %.3f,\n",
                     speedup_warm);
        std::fprintf(json, "    \"cold_bit_identical\": %s,\n",
                     sc.coldBitIdentical ? "true" : "false");
        std::fprintf(json, "    \"max_warm_upb_delta\": %.3g,\n",
                     sc.maxWarmUpbDelta);
        std::fprintf(json, "    \"shortcut_hits\": %zu\n",
                     sc.shortcutHits);
        std::fprintf(json, "  },\n");
        std::fprintf(json, "  \"fit_throughput\": [\n");
        for (int i = 0; i < 3; ++i) {
            std::fprintf(json,
                         "    {\"m\": %zu, \"cold_fits_per_sec\": "
                         "%.0f, \"warm_fits_per_sec\": %.0f, "
                         "\"profile_eval_ns\": %.1f}%s\n",
                         ms[i], rates[i].coldPerSec,
                         rates[i].warmPerSec, rates[i].profileEvalNs,
                         i + 1 < 3 ? "," : "");
        }
        std::fprintf(json, "  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_estimator.json\n");
    }

    if (!sc.coldBitIdentical) {
        std::printf("FAIL: cold incremental estimate diverged from "
                    "the from-scratch pipeline\n");
        return 1;
    }
    return 0;
}
