/**
 * @file
 * Figure 11: estimated optimal system performance (UPB point
 * estimate with 0.95 confidence interval) for samples of 1000, 2000
 * and 5000 assignments, five benchmarks.
 *
 * Paper observations: the point estimate is roughly constant across
 * sample sizes; the confidence interval narrows significantly with
 * the sample for all benchmarks except Aho-Corasick.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 11",
                  "estimated optimal performance (UPB) with 0.95 "
                  "confidence intervals");

    const Topology t2 = Topology::ultraSparcT2();
    const std::uint64_t seed = 123;

    std::printf("%-16s %6s %12s %12s %14s %10s\n", "Benchmark", "n",
                "UPB (MPPS)", "CI lo", "CI hi", "m(exceed)");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator estimator(engine, t2, 24,
                                                    seed);
        std::size_t grown = 0;
        for (std::size_t n : {1000u, 2000u, 5000u}) {
            const auto result = estimator.extend(n - grown);
            grown = n;
            const auto &pot = result.pot;
            std::printf("%-16s %6zu %12s %12s %14s %10zu\n",
                        benchmarkName(b).c_str(), n,
                        pot.valid ? bench::mpps(pot.upb).c_str()
                                  : "invalid",
                        bench::mpps(pot.upbLower).c_str(),
                        std::isfinite(pot.upbUpper)
                            ? bench::mpps(pot.upbUpper).c_str()
                            : "unbounded",
                        pot.exceedanceCount);
        }
    }
    std::printf("\npaper: point estimates stable in n; CIs narrow "
                "with n for all benchmarks\nexcept Aho-Corasick. "
                "Exceedances capped at 5%% of the sample "
                "(50/100/250).\n");
    return 0;
}
