/**
 * @file
 * Ablation A14: what Byzantine shard auditing costs and what it
 * catches. One of four shard workers computes honestly, then
 * corrupts the value bits of every Ok outcome before replying —
 * valid frames, valid CRCs, wrong VALUES, the one fault the
 * transport layer cannot see. The sweep varies the audit fraction f
 * (the seeded share of indices issued to two backends) and tracks
 * the duplicate-work overhead against the detection outcome: batches
 * until the first conviction, convictions until quarantine, and the
 * number of corrupted values that reached the campaign undetected.
 *
 * f = 0 is the control: with auditing off, every corrupted value is
 * silently accepted and the final estimate is built on garbage. Any
 * f > 0 catches a corrupting backend with per-batch probability
 * 1 - (1 - f)^k (k = the offender's share of the batch), so
 * detection is probabilistic per batch but inevitable across a
 * campaign — the ablation shows how fast "inevitable" arrives.
 *
 * Deterministic: in-memory loopback backends wrap real ShardWorkers
 * over fresh simulated engines, driven by a ManualClock. No
 * processes, no wall-clock.
 *
 * Accepts `--quick` to shrink the sweep for the CI smoke run.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "base/clock.hh"
#include "core/sampler.hh"
#include "core/shard_worker.hh"
#include "core/sharded_engine.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using core::Assignment;
using core::MeasurementOutcome;
using core::Topology;

const Topology t2 = Topology::ultraSparcT2();
constexpr std::uint64_t kConfigHash = 14;
constexpr std::size_t kShards = 4;
constexpr std::size_t kByzantineSlot = 1;

sim::Workload
workload()
{
    return sim::makeWorkload(sim::Benchmark::IpfwdL1, 8);
}

/** Byzantine decorator: honest computation, corrupted value bits —
 *  mirrors the worker binary's --garbage-values chaos mode. */
class GarbageEngine : public core::PerformanceEngine
{
  public:
    explicit GarbageEngine(core::PerformanceEngine &inner)
        : inner_(inner)
    {
    }

    double
    measure(const Assignment &assignment) override
    {
        return measureOutcome(assignment).valueOrNaN();
    }

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override
    {
        return corrupt(inner_.measureOutcome(assignment));
    }

    void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out) override
    {
        inner_.measureBatchOutcome(batch, out);
        for (MeasurementOutcome &o : out)
            o = corrupt(o);
    }

    core::OutcomeKernel
    outcomeKernel(std::size_t batchSize) override
    {
        core::OutcomeKernel kernel = inner_.outcomeKernel(batchSize);
        if (!kernel)
            return kernel;
        return [kernel](const Assignment &assignment,
                        std::size_t index) {
            return corrupt(kernel(assignment, index));
        };
    }

    void
    reserveMeasurementIndices(std::size_t count) override
    {
        inner_.reserveMeasurementIndices(count);
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(core::EngineStats &stats) const override
    {
        inner_.collectStats(stats);
    }

  private:
    static MeasurementOutcome
    corrupt(MeasurementOutcome outcome)
    {
        if (!outcome.ok())
            return outcome;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &outcome.value, sizeof bits);
        bits ^= 0xffffffULL; // low mantissa: finite, plausible
        std::memcpy(&outcome.value, &bits, sizeof bits);
        return outcome;
    }

    core::PerformanceEngine &inner_;
};

/** In-memory ShardBackend over a real ShardWorker: the production
 *  protocol and evaluation paths with the pipe replaced by a byte
 *  buffer. */
class LoopbackBackend : public core::ShardBackend
{
  public:
    LoopbackBackend(base::ManualClock &clock, bool garbage)
        : clock_(clock), garbage_(garbage)
    {
    }

    bool
    start(std::string &error) override
    {
        (void)error;
        engine_ = std::make_unique<sim::SimulatedEngine>(workload());
        core::PerformanceEngine *engine = engine_.get();
        if (garbage_) {
            corrupting_ = std::make_unique<GarbageEngine>(*engine);
            engine = corrupting_.get();
        }
        worker_ = std::make_unique<core::ShardWorker>(
            *engine, t2, workload().taskCount(), kConfigHash);
        const auto hello = worker_->helloBytes();
        parser_.feed(hello.data(), hello.size());
        return true;
    }

    bool
    send(const std::uint8_t *data, std::size_t size) override
    {
        if (dead_ || !worker_)
            return false;
        std::vector<std::uint8_t> response;
        worker_->consume(data, size, response);
        parser_.feed(response.data(), response.size());
        return true;
    }

    RecvStatus
    receive(core::ShardFrame &frame,
            double maxWaitSeconds) override
    {
        if (dead_ || !worker_)
            return RecvStatus::Closed;
        if (parser_.corrupt())
            return RecvStatus::Corrupt;
        if (parser_.next(frame))
            return RecvStatus::Frame;
        clock_.advance(maxWaitSeconds);
        return RecvStatus::Timeout;
    }

    void terminate() override { dead_ = true; }

  private:
    base::ManualClock &clock_;
    const bool garbage_;
    std::unique_ptr<sim::SimulatedEngine> engine_;
    std::unique_ptr<GarbageEngine> corrupting_;
    std::unique_ptr<core::ShardWorker> worker_;
    core::ShardFrameParser parser_;
    bool dead_ = false;
};

std::vector<Assignment>
drawBatch(std::size_t n, std::uint64_t seed)
{
    core::RandomAssignmentSampler sampler(
        t2, workload().taskCount(), seed);
    return sampler.drawSample(n);
}

bool
sameOutcome(const MeasurementOutcome &a, const MeasurementOutcome &b)
{
    if (a.status != b.status)
        return false;
    return std::memcmp(&a.value, &b.value, sizeof a.value) == 0;
}

struct SweepRow
{
    double fraction = 0.0;
    core::EngineStats stats;
    long firstConvictionBatch = -1; // 1-based; -1 = never
    std::uint64_t corruptAccepted = 0;
    std::uint64_t measurements = 0;
};

SweepRow
runSweepPoint(double fraction,
              const std::vector<std::vector<Assignment>> &batches,
              const std::vector<std::vector<MeasurementOutcome>>
                  &reference)
{
    SweepRow row;
    row.fraction = fraction;

    base::ManualClock clock;
    core::ShardedOptions options;
    options.shards = kShards;
    options.requestDeadlineSeconds = 5.0;
    options.heartbeatSeconds = 1000.0;
    options.heartbeatTimeoutSeconds = 2.0;
    options.backoffBaseSeconds = 0.25;
    options.backoffFactor = 2.0;
    options.backoffCapSeconds = 8.0;
    options.quarantineThreshold = 3;
    options.auditFraction = fraction;
    options.auditSeed = 2024;
    options.expected.configHash = kConfigHash;
    options.expected.cores = t2.cores;
    options.expected.pipesPerCore = t2.pipesPerCore;
    options.expected.strandsPerPipe = t2.strandsPerPipe;
    options.expected.tasks = workload().taskCount();
    options.clock = &clock;

    sim::SimulatedEngine inner(workload());
    core::ShardedEngine sharded(
        inner,
        [&clock](std::size_t index) {
            return std::unique_ptr<core::ShardBackend>(
                new LoopbackBackend(clock,
                                    index == kByzantineSlot));
        },
        options);

    for (std::size_t b = 0; b < batches.size(); ++b) {
        std::vector<MeasurementOutcome> out(batches[b].size());
        sharded.measureBatchOutcome(batches[b], out);
        for (std::size_t i = 0; i < out.size(); ++i)
            row.corruptAccepted +=
                sameOutcome(out[i], reference[b][i]) ? 0 : 1;
        row.measurements += out.size();
        if (row.firstConvictionBatch < 0) {
            core::EngineStats soFar;
            sharded.collectStats(soFar);
            if (soFar.shardConvictions > 0)
                row.firstConvictionBatch =
                    static_cast<long>(b) + 1;
        }
        // Let respawn backoff gates expire between batches, as real
        // campaign time would.
        clock.advance(10.0);
    }
    sharded.collectStats(row.stats);
    return row;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    bench::banner("Ablation A14",
                  "Byzantine shard auditing: duplicate-work overhead "
                  "vs detection, 1 corrupting shard of 4");

    const std::size_t batchCount = quick ? 12 : 40;
    const std::size_t batchSize = quick ? 24 : 48;

    std::vector<std::vector<Assignment>> batches;
    for (std::size_t b = 0; b < batchCount; ++b)
        batches.push_back(drawBatch(batchSize, 100 + b));

    // The unsharded in-process engine is the ground truth every
    // sweep point is diffed against, bit for bit.
    std::vector<std::vector<MeasurementOutcome>> reference;
    {
        sim::SimulatedEngine truth(workload());
        for (const auto &batch : batches) {
            std::vector<MeasurementOutcome> out(batch.size());
            truth.measureBatchOutcome(batch, out);
            reference.push_back(std::move(out));
        }
    }

    std::printf("%zu batches x %zu measurements, shard %zu corrupts "
                "every Ok value's bits\n\n",
                batchCount, batchSize, kByzantineSlot);
    std::printf("%-9s %8s %9s %10s %11s %11s %8s %10s %10s\n",
                "fraction", "audits", "overhead", "mismatch",
                "convicted", "1st-convict", "quarant", "reissues",
                "corrupt");

    const double sweep[] = {0.0, 0.05, 0.10, 0.25, 0.50};
    bool silentCorruption = false;
    bool convictedEverywhere = true;
    bool highFractionClean = true;
    for (const double fraction : sweep) {
        const SweepRow row =
            runSweepPoint(fraction, batches, reference);
        const double overhead = row.measurements > 0
            ? static_cast<double>(row.stats.shardAudits) /
                static_cast<double>(row.measurements)
            : 0.0;
        char firstConviction[32];
        if (row.firstConvictionBatch > 0)
            std::snprintf(firstConviction, sizeof firstConviction,
                          "batch %ld", row.firstConvictionBatch);
        else
            std::snprintf(firstConviction, sizeof firstConviction,
                          "never");
        std::printf(
            "%-9s %8llu %9s %10llu %11llu %11s %8llu %10llu %10llu\n",
            bench::pct(fraction).c_str(),
            static_cast<unsigned long long>(row.stats.shardAudits),
            bench::pct(overhead).c_str(),
            static_cast<unsigned long long>(
                row.stats.shardAuditMismatches),
            static_cast<unsigned long long>(
                row.stats.shardConvictions),
            firstConviction,
            static_cast<unsigned long long>(
                row.stats.shardsQuarantined),
            static_cast<unsigned long long>(row.stats.shardReissues),
            static_cast<unsigned long long>(row.corruptAccepted));
        if (fraction == 0.0) {
            silentCorruption = row.corruptAccepted > 0;
        } else {
            if (row.stats.shardConvictions == 0)
                convictedEverywhere = false;
            // Only the highest fraction promises cleanliness: at low
            // f, a batch the audit happens to miss keeps its
            // corrupted values — that leak-vs-overhead trade IS the
            // ablation.
            if (fraction == 0.50 && row.corruptAccepted > 0)
                highFractionClean = false;
        }
    }

    std::printf(
        "\nf = 0 is the disaster case: every corrupted value is "
        "accepted and nothing is\never convicted. Any f > 0 convicts "
        "the offender within a few batches and the\nquarantine "
        "ladder removes it for good; the price is the duplicate "
        "share of\nmeasurements (~f), traded against how many "
        "corrupted values slip through\nbefore the conviction "
        "lands.\n");

    // The ablation doubles as a regression gate: auditing off must
    // show the corruption (the Byzantine engine works), auditing on
    // must convict, and the heavy-audit point must end bit-identical
    // (conviction + arbitration + re-issue work).
    if (!silentCorruption) {
        std::fprintf(stderr, "A14: expected silent corruption at "
                             "audit fraction 0\n");
        return 1;
    }
    if (!convictedEverywhere) {
        std::fprintf(stderr, "A14: a nonzero audit fraction failed "
                             "to convict the corrupting shard\n");
        return 1;
    }
    if (!highFractionClean) {
        std::fprintf(stderr, "A14: corrupted values survived the "
                             "50%% audit sweep point\n");
        return 1;
    }
    return 0;
}
