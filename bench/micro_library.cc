/**
 * @file
 * Ablation A4: google-benchmark microbenchmarks of the library hot
 * paths — the assignment sampler, the contention solver, the POT
 * estimation, and the real packet kernels whose costs ground the
 * simulator profiles (net/kernel_costs.hh).
 */

#include <benchmark/benchmark.h>

#include "core/sampler.hh"
#include "net/aho_corasick.hh"
#include "net/flow_table.hh"
#include "net/generator.hh"
#include "net/ipfwd.hh"
#include "net/keywords.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/pot.hh"

namespace
{

using namespace statsched;

void
BM_SamplerDrawRejection(benchmark::State &state)
{
    // The paper's rejection loop; acceptance collapses near full
    // machine load, so only moderate loads are benchmarked.
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(),
        static_cast<std::uint32_t>(state.range(0)), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.draw());
}
BENCHMARK(BM_SamplerDrawRejection)->Arg(6)->Arg(24)->Arg(32);

void
BM_SamplerDrawFisherYates(benchmark::State &state)
{
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(),
        static_cast<std::uint32_t>(state.range(0)), 1,
        core::SamplingMethod::PartialFisherYates);
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.draw());
}
BENCHMARK(BM_SamplerDrawFisherYates)->Arg(6)->Arg(24)->Arg(48)
    ->Arg(64);

void
BM_ContentionSolve(benchmark::State &state)
{
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(), 24, 2);
    const auto assignment = sampler.draw();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.deterministic(assignment));
}
BENCHMARK(BM_ContentionSolve);

void
BM_PotEstimation(benchmark::State &state)
{
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(), 24, 3);
    std::vector<double> sample;
    for (int i = 0; i < state.range(0); ++i)
        sample.push_back(engine.measure(sampler.draw()));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stats::estimateOptimalPerformance(sample));
    }
}
BENCHMARK(BM_PotEstimation)->Arg(1000)->Arg(5000);

void
BM_IpfwdForward(benchmark::State &state)
{
    const net::Ipv4ForwardingTable table(
        state.range(0) ? net::IpfwdMode::MemoryBound
                       : net::IpfwdMode::L1Resident,
        16, 4);
    net::TrafficGenerator gen{net::TrafficConfig{}};
    auto packets = gen.burst(256);
    std::size_t i = 0;
    for (auto _ : state) {
        net::Packet copy = packets[i++ & 255];
        benchmark::DoNotOptimize(table.forward(copy));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IpfwdForward)->Arg(0)->Arg(1);

void
BM_AhoCorasickScan(benchmark::State &state)
{
    const net::AhoCorasick automaton(net::dosKeywordSet());
    net::TrafficConfig config;
    config.payloadMin = 512;
    config.payloadMax = 512;
    net::TrafficGenerator gen(config);
    auto packets = gen.burst(64);
    std::size_t i = 0;
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const net::Packet &pkt = packets[i++ & 63];
        benchmark::DoNotOptimize(automaton.countMatches(
            pkt.payload(), pkt.payloadSize()));
        bytes += pkt.payloadSize();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AhoCorasickScan);

void
BM_FlowTableUpdate(benchmark::State &state)
{
    net::FlowTable table;
    net::TrafficGenerator gen{net::TrafficConfig{}};
    auto packets = gen.burst(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            table.update(packets[i & 1023], i));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableUpdate);

} // anonymous namespace

BENCHMARK_MAIN();
