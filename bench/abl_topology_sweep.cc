/**
 * @file
 * Ablation A9: architecture independence. The paper stresses that
 * the method "scales to any number of cores and hardware contexts
 * per core and does not require knowledge of the architecture of
 * the target hardware." This sweep runs the identical pipeline —
 * same workload, same statistics — across processor shapes from a
 * small 4-core part to a 32-core massively multithreaded design.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/assignment_space.hh"
#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A9",
                  "the same method across processor shapes "
                  "(IPFwd-L1, 8 instances, n = 2000)");

    const Topology shapes[] = {
        {4, 2, 4},    // half-size T2
        {8, 2, 4},    // UltraSPARC T2 (the paper's machine)
        {8, 1, 8},    // T1-style: one pipe of 8 strands per core
        {16, 2, 4},   // doubled T2
        {32, 4, 2},   // MMT future part: 256 contexts
    };

    std::printf("%-10s %9s %16s %12s %12s %8s\n", "shape", "ctxs",
                "assign space", "best (MPPS)", "UPB (MPPS)",
                "xi-hat");
    for (const Topology &topo : shapes) {
        const core::AssignmentSpace space(topo);
        const auto count = space.countAssignments(24);

        SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
        // The O(T) sampler handles the near-full small shapes where
        // the paper's rejection loop would practically never accept.
        stats::PotOptions pot;
        core::RandomAssignmentSampler sampler(
            topo, 24, 1212, core::SamplingMethod::PartialFisherYates);
        std::vector<double> sample;
        double best = 0.0;
        for (int i = 0; i < 2000; ++i) {
            const double v = engine.measure(sampler.draw());
            sample.push_back(v);
            best = std::max(best, v);
        }
        const auto est = stats::estimateOptimalPerformance(sample,
                                                           pot);
        std::printf("%-10s %9u %16s %12s %12s %8.3f\n",
                    topo.shapeString().c_str(), topo.contexts(),
                    count.toScientific(2).c_str(),
                    bench::mpps(best).c_str(),
                    est.valid ? bench::mpps(est.upb).c_str()
                              : "invalid",
                    est.fit.xi);
    }

    std::printf("\nthe pipeline runs unmodified on every shape; "
                "more contexts per workload mean\nless contention "
                "and a tighter population, fewer mean more — the "
                "method only sees\nthe performance sample.\n");
    return 0;
}
