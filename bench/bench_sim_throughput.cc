/**
 * @file
 * Measurement throughput of the batch-first simulated engine.
 *
 * The statistical method's cost is dominated by iid measurement
 * sweeps: tens of thousands of independent solve-and-measure calls
 * per campaign. This harness quantifies what the batch-first
 * restructuring of src/sim buys on that inner loop:
 *
 *  - baseline:  the frozen pre-refactor model (sim/reference_solver),
 *               which allocates on every call and re-derives all
 *               assignment-independent quantities;
 *  - serial:    SimulatedEngine::measureBatch on one thread —
 *               precomputed SoA tables + one reused Scratch;
 *  - parallel:  the same batch through core::ParallelEngine at 4 and
 *               16 threads (per-thread Scratch leases from the pool).
 *
 * Three scenarios (small / medium / large) plus a task:context
 * occupancy sweep on the 64-context UltraSPARC T2 topology. Every
 * timed configuration is also *verified*: the production noiseless
 * model must match the reference solver bit for bit on every
 * assignment, and the noisy batch outputs must be bit-identical at
 * 1, 4 and 16 threads. Any mismatch makes the binary exit non-zero,
 * so the bench doubles as a determinism gate in CI (--smoke).
 *
 * Usage: bench_sim_throughput [--smoke]
 * Writes BENCH_sim.json to the working directory.
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "core/parallel_engine.hh"
#include "core/sampler.hh"
#include "core/topology.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "sim/reference_solver.hh"

namespace
{

using namespace statsched;
using namespace statsched::sim;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

bool
bitEqual(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
        std::bit_cast<std::uint64_t>(b);
}

std::vector<core::Assignment>
sampleBatch(const Workload &w, std::uint64_t seed, std::size_t count)
{
    core::RandomAssignmentSampler sampler(
        core::Topology::ultraSparcT2(), w.taskCount(), seed,
        core::SamplingMethod::PartialFisherYates);
    return sampler.drawSample(count);
}

struct ScenarioSpec
{
    const char *name;
    Benchmark benchmark;
    std::uint32_t instances;
    std::uint64_t seed;
};

struct ScenarioResult
{
    std::size_t tasks = 0;
    std::size_t batch = 0;
    double refPerSec = 0.0;
    double serialPerSec = 0.0;
    double par4PerSec = 0.0;
    double par16PerSec = 0.0;
    bool deterministicIdentical = true;
    bool threadsIdentical = true;
};

/** Times one full pass over the batch, min over `repeats`. */
template <typename F>
double
timedPerSec(std::size_t batch, int repeats, F pass)
{
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < repeats; ++r) {
        const auto start = Clock::now();
        pass();
        best = std::min(best, seconds(start, Clock::now()));
    }
    return static_cast<double>(batch) / best;
}

ScenarioResult
runScenario(const ScenarioSpec &spec, std::size_t batchSize,
            int repeats)
{
    Workload w = makeWorkload(spec.benchmark, spec.instances);
    const ChipConfig config;
    const auto batch = sampleBatch(w, spec.seed, batchSize);

    ScenarioResult out;
    out.tasks = w.taskCount();
    out.batch = batch.size();

    // Baseline (the frozen pre-refactor model, one call per item)
    // and the production serial path are timed interleaved within
    // each repeat, best-of per side: machine-noise phases — CPU
    // frequency dips under background load — then hit both sides
    // about equally instead of skewing the reported ratio.
    EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    SimulatedEngine serialEngine(w, config, noiseless);
    std::vector<double> refOut(batch.size());
    std::vector<double> serialOut(batch.size());
    double refBest = std::numeric_limits<double>::infinity();
    double serialBest = refBest;
    for (int r = 0; r < repeats; ++r) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < batch.size(); ++i)
            refOut[i] = referenceDeterministic(w, config, batch[i]);
        const auto t1 = Clock::now();
        serialEngine.measureBatch(batch, serialOut);
        const auto t2 = Clock::now();
        refBest = std::min(refBest, seconds(t0, t1));
        serialBest = std::min(serialBest, seconds(t1, t2));
    }
    out.refPerSec = static_cast<double>(batch.size()) / refBest;
    out.serialPerSec =
        static_cast<double>(batch.size()) / serialBest;

    // The refactor's contract: bit identity with the reference.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!bitEqual(refOut[i], serialOut[i]))
            out.deterministicIdentical = false;
    }

    // Parallel: same noiseless batch via ParallelEngine. Noise is off,
    // so serial and parallel outputs must agree exactly too.
    for (unsigned threads : {4u, 16u}) {
        SimulatedEngine inner(w, config, noiseless);
        core::ParallelEngine parallel(inner, threads);
        std::vector<double> parOut(batch.size());
        const double perSec = timedPerSec(batch.size(), repeats, [&] {
            parallel.measureBatch(batch, parOut);
        });
        (threads == 4u ? out.par4PerSec : out.par16PerSec) = perSec;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!bitEqual(serialOut[i], parOut[i]))
                out.threadsIdentical = false;
        }
    }

    // Noisy-path identity at 1/4/16 threads: fresh engines with the
    // default noise model must produce the same bits regardless of
    // thread count (per-index noise substreams).
    {
        std::vector<double> noisySerial(batch.size());
        {
            SimulatedEngine engine(w, config, {});
            engine.measureBatch(batch, noisySerial);
        }
        for (unsigned threads : {1u, 4u, 16u}) {
            SimulatedEngine inner(w, config, {});
            core::ParallelEngine parallel(inner, threads);
            std::vector<double> noisyOut(batch.size());
            parallel.measureBatch(batch, noisyOut);
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (!bitEqual(noisySerial[i], noisyOut[i]))
                    out.threadsIdentical = false;
            }
        }
    }
    return out;
}

void
printScenario(const char *name, const ScenarioResult &r)
{
    std::printf("%-8s %3zu tasks  batch %-5zu "
                "ref %9.0f/s  serial %10.0f/s (%5.1fx)  "
                "4t %10.0f/s  16t %10.0f/s (%5.1fx)  %s\n",
                name, r.tasks, r.batch, r.refPerSec, r.serialPerSec,
                r.serialPerSec / r.refPerSec, r.par4PerSec,
                r.par16PerSec, r.par16PerSec / r.refPerSec,
                (r.deterministicIdentical && r.threadsIdentical)
                    ? "bit-identical"
                    : "MISMATCH");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const int repeats = smoke ? 1 : 8;
    const std::size_t batchSize = smoke ? 64 : 4096;
    const std::size_t sweepBatch = smoke ? 32 : 1024;

    bench::banner("simulator throughput",
                  "batch-first measurement path vs the frozen "
                  "pre-refactor reference model");
    std::printf("batch %zu, %d repeat(s)%s; measurements/sec, best "
                "of repeats\n", batchSize, repeats,
                smoke ? " [smoke]" : "");

    const ScenarioSpec scenarios[] = {
        {"small", Benchmark::IpfwdL1, 2, 8101},
        {"medium", Benchmark::IpfwdL1, 8, 8202},
        {"large", Benchmark::IpfwdMem, 16, 8303},
    };

    bench::section("scenarios");
    ScenarioResult results[3];
    bool identical = true;
    for (int i = 0; i < 3; ++i) {
        results[i] = runScenario(scenarios[i], batchSize, repeats);
        printScenario(scenarios[i].name, results[i]);
        identical = identical && results[i].deterministicIdentical &&
            results[i].threadsIdentical;
    }

    // Occupancy sweep: the same engine across task:context ratios on
    // the 64-context chip. 3 tasks per instance.
    bench::section("task:context occupancy sweep (IPFwd-L1)");
    const std::uint32_t sweepInstances[] = {2, 4, 8, 12, 16, 20};
    ScenarioResult sweep[6];
    for (int i = 0; i < 6; ++i) {
        const ScenarioSpec spec{"sweep", Benchmark::IpfwdL1,
                                sweepInstances[i],
                                9000 + sweepInstances[i]};
        sweep[i] = runScenario(spec, sweepBatch, repeats);
        std::printf("  %2zu/64 contexts  ref %9.0f/s  serial %10.0f/s "
                    "(%5.1fx)\n",
                    sweep[i].tasks, sweep[i].refPerSec,
                    sweep[i].serialPerSec,
                    sweep[i].serialPerSec / sweep[i].refPerSec);
        identical = identical && sweep[i].deterministicIdentical &&
            sweep[i].threadsIdentical;
    }

    FILE *json = std::fopen("BENCH_sim.json", "w");
    if (json) {
        std::fprintf(json, "{\n");
        std::fprintf(json, "  \"benchmark\": \"sim_throughput\",\n");
        std::fprintf(json, "  \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(json,
                     "  \"batch\": %zu, \"repeats\": %d,\n",
                     batchSize, repeats);
        std::fprintf(json, "  \"scenarios\": [\n");
        for (int i = 0; i < 3; ++i) {
            const ScenarioResult &r = results[i];
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"tasks\": %zu, "
                "\"ref_meas_per_sec\": %.0f, "
                "\"serial_meas_per_sec\": %.0f, "
                "\"parallel4_meas_per_sec\": %.0f, "
                "\"parallel16_meas_per_sec\": %.0f, "
                "\"speedup_serial\": %.2f, "
                "\"speedup_parallel16\": %.2f, "
                "\"bit_identical\": %s}%s\n",
                scenarios[i].name, r.tasks, r.refPerSec,
                r.serialPerSec, r.par4PerSec, r.par16PerSec,
                r.serialPerSec / r.refPerSec,
                r.par16PerSec / r.refPerSec,
                (r.deterministicIdentical && r.threadsIdentical)
                    ? "true"
                    : "false",
                i + 1 < 3 ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(json, "  \"occupancy_sweep\": [\n");
        for (int i = 0; i < 6; ++i) {
            std::fprintf(
                json,
                "    {\"tasks\": %zu, \"contexts\": 64, "
                "\"ref_meas_per_sec\": %.0f, "
                "\"serial_meas_per_sec\": %.0f, "
                "\"speedup_serial\": %.2f}%s\n",
                sweep[i].tasks, sweep[i].refPerSec,
                sweep[i].serialPerSec,
                sweep[i].serialPerSec / sweep[i].refPerSec,
                i + 1 < 6 ? "," : "");
        }
        std::fprintf(json, "  ],\n");
        std::fprintf(json, "  \"bit_identical\": %s\n",
                     identical ? "true" : "false");
        std::fprintf(json, "}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_sim.json\n");
    }

    if (!identical) {
        std::printf("FAIL: production path diverged from the "
                    "reference model (see MISMATCH rows)\n");
        return 1;
    }
    return 0;
}
