/**
 * @file
 * Figure 7: the profile log-likelihood L*(UPB) with the 0.95
 * confidence cut L(xi-hat, UPB-hat) - chi2(0.95,1)/2 (Wilks), for
 * the 24-thread IPFwd-L1 sample.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/pot.hh"
#include "stats/special_functions.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 7",
                  "profile log-likelihood of the UPB with the "
                  "likelihood-ratio confidence cut");

    const Topology t2 = Topology::ultraSparcT2();
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 7777);
    std::vector<double> sample;
    for (int i = 0; i < 5000; ++i)
        sample.push_back(engine.measure(sampler.draw()));

    const auto est = stats::estimateOptimalPerformance(sample);
    const auto sel = stats::selectThreshold(sample, {});

    std::printf("threshold u = %s MPPS, m = %zu exceedances, "
                "xi-hat = %.3f\n",
                bench::mpps(est.threshold).c_str(),
                sel.exceedances.size(), est.fit.xi);
    std::printf("UPB point estimate = %s MPPS, max log-likelihood "
                "L = %.3f\n",
                bench::mpps(est.upb).c_str(), est.profileMaxLogLik);

    const double cut = est.profileMaxLogLik -
        0.5 * stats::chiSquaredQuantile(0.95, 1.0);
    std::printf("0.95 cut level: L - chi2(0.95,1)/2 = %.3f\n", cut);

    bench::section("L*(UPB) curve");
    const double lo = est.maxObserved * 1.00002;
    const double hi = std::isfinite(est.upbUpper)
        ? est.upbUpper * 1.15
        : est.upb + 6.0 * (est.upb - est.maxObserved);
    const auto curve =
        stats::profileCurve(est, sel.exceedances, lo, hi, 28);
    for (const auto &[upb, l] : curve) {
        std::printf("  UPB = %s MPPS   L* = %10.3f  %s\n",
                    bench::mpps(upb).c_str(), l,
                    l >= cut ? "| inside 95% CI" : "|");
    }

    bench::section("resulting confidence interval");
    std::printf("  UPB in [%s, %s] MPPS at confidence 0.95\n",
                bench::mpps(est.upbLower).c_str(),
                std::isfinite(est.upbUpper)
                ? bench::mpps(est.upbUpper).c_str() : "inf");
    return 0;
}
