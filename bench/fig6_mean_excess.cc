/**
 * @file
 * Figure 6: (a) ordered sample of 5000 random task assignments for
 * 24 threads of IPFwd-L1; (b) the sample mean-excess plot used to
 * select the POT threshold (paper: pick u where the plot turns
 * linear, around 6.6 MPPS, keeping at most 5% exceedances).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/descriptive.hh"
#include "stats/mean_excess.hh"
#include "stats/threshold.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 6",
                  "sorted sample and mean-excess plot, 24-thread "
                  "IPFwd-L1, n = 5000");

    const Topology t2 = Topology::ultraSparcT2();
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 20120303);

    std::vector<double> sample;
    sample.reserve(5000);
    for (int i = 0; i < 5000; ++i)
        sample.push_back(engine.measure(sampler.draw()));

    const stats::MeanExcess me(sample);
    const auto &sorted = me.sorted();

    bench::section("(a) ordered sample, every 250th order statistic");
    for (std::size_t i = 0; i < sorted.size(); i += 250)
        std::printf("  #%4zu  %s MPPS\n", i + 1,
                    bench::mpps(sorted[i]).c_str());
    std::printf("  #%4zu  %s MPPS (best observed)\n", sorted.size(),
                bench::mpps(sorted.back()).c_str());

    bench::section("(b) sample mean excess plot e_n(u), upper half");
    const auto plot = me.upperPlot(0.5);
    const std::size_t step = std::max<std::size_t>(1,
                                                   plot.size() / 24);
    for (std::size_t i = 0; i < plot.size(); i += step)
        std::printf("  u = %s MPPS   e_n(u) = %10.0f PPS\n",
                    bench::mpps(plot[i].first).c_str(),
                    plot[i].second);

    bench::section("threshold selection (<= 5% exceedances)");
    const auto sel = stats::selectThreshold(sample, {});
    std::printf("  selected u = %s MPPS with %zu exceedances "
                "(paper picks ~6.6 MPPS)\n",
                bench::mpps(sel.threshold).c_str(),
                sel.exceedances.size());
    std::printf("  mean-excess tail linearity above u: R^2 = %.4f\n",
                sel.tailLinearity);
    return 0;
}
