/**
 * @file
 * Figure 2: Probability that a sample of n random assignments
 * contains at least one of the P% best-performing assignments,
 * P in {1, 2, 5, 10, 25}.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/capture_probability.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::core;

    bench::banner("Figure 2",
                  "P(sample captures one of the best P%) = "
                  "1 - ((100-P)/100)^n");

    const double percents[] = {1.0, 2.0, 5.0, 10.0, 25.0};

    std::printf("%-8s", "n");
    for (double p : percents)
        std::printf("   P=%-5.0f", p);
    std::printf("\n");

    for (std::uint64_t n : {1ull, 2ull, 5ull, 10ull, 20ull, 50ull,
                            100ull, 200ull, 500ull, 1000ull, 2000ull,
                            5000ull}) {
        std::printf("%-8llu", static_cast<unsigned long long>(n));
        for (double p : percents)
            std::printf("  %7.4f", captureProbability(p, n));
        std::printf("\n");
    }

    bench::section("required sample size for target capture "
                   "probability");
    std::printf("%-10s %12s %12s %12s\n", "P(top %)", "target .90",
                "target .99", "target .999");
    for (double p : percents) {
        std::printf("%-10.0f %12llu %12llu %12llu\n", p,
                    static_cast<unsigned long long>(
                        requiredSampleSize(p, 0.90)),
                    static_cast<unsigned long long>(
                        requiredSampleSize(p, 0.99)),
                    static_cast<unsigned long long>(
                        requiredSampleSize(p, 0.999)));
    }

    std::printf("\npaper: several hundred draws capture the top "
                "1-2%% with probability > 0.99;\n"
                "samples below 10 are unlikely to capture the top "
                "1-5%%.\n");
    return 0;
}
