/**
 * @file
 * Ablation A6: UPB confidence-interval construction — the paper's
 * profile-likelihood (likelihood-ratio / Wilks) interval vs a
 * percentile bootstrap over full re-estimations.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/bootstrap.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A6",
                  "profile-likelihood vs bootstrap 0.95 intervals "
                  "for the UPB, n = 3000");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-16s %10s | %10s %12s | %10s %10s\n", "Benchmark",
                "UPB", "prof lo", "prof hi", "boot lo", "boot hi");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::RandomAssignmentSampler sampler(t2, 24, 4004);
        std::vector<double> sample;
        for (int i = 0; i < 3000; ++i)
            sample.push_back(engine.measure(sampler.draw()));

        const auto profile =
            stats::estimateOptimalPerformance(sample);
        const auto boot =
            stats::bootstrapUpbInterval(sample, {}, 150, 11);

        std::printf("%-16s %10s | %10s %12s | %10s %10s\n",
                    benchmarkName(b).c_str(),
                    profile.valid
                        ? bench::mpps(profile.upb).c_str()
                        : "invalid",
                    bench::mpps(profile.upbLower).c_str(),
                    std::isfinite(profile.upbUpper)
                        ? bench::mpps(profile.upbUpper).c_str()
                        : "unbounded",
                    bench::mpps(boot.lower).c_str(),
                    bench::mpps(boot.upper).c_str());
    }
    std::printf("\nthe bootstrap resamples the whole estimation "
                "(threshold + fit + endpoint);\nagreement with the "
                "profile interval supports the paper's "
                "likelihood-ratio\nconstruction. Bootstrap costs "
                "150 full re-fits per row.\n");
    return 0;
}
