/**
 * @file
 * Ablation A7: the integrated predictor approach of Section 5.4 —
 * train a cheap performance predictor on a small measured sample,
 * run the full statistical analysis on *predicted* performance, and
 * compare against the measurement-driven analysis. "The accuracy of
 * the integrated approach depends on the accuracy of the predictor."
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "core/predictor.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A7",
                  "EVT analysis on predicted vs measured "
                  "performance (Section 5.4)");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-16s %8s %8s | %12s %12s %10s\n", "Benchmark",
                "R^2", "mae%", "UPB(meas)", "UPB(pred)", "delta");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine oracle(makeWorkload(b, 8));

        // Train on 400 measured assignments (~10 min of testbed
        // time), then predict the rest for free.
        core::TrainedPredictorEngine predictor(oracle, t2, 24, 400,
                                               5005);
        const auto acc = predictor.evaluate(oracle, 400, 6006);

        core::OptimalPerformanceEstimator measured_est(oracle, t2,
                                                       24, 7007);
        core::OptimalPerformanceEstimator predicted_est(predictor,
                                                        t2, 24,
                                                        7007);
        const auto measured = measured_est.extend(3000);
        const auto predicted = predicted_est.extend(3000);

        const double delta = measured.pot.valid &&
            predicted.pot.valid
            ? (predicted.pot.upb - measured.pot.upb) /
                measured.pot.upb
            : 0.0;
        std::printf("%-16s %8.3f %7.2f%% | %12s %12s %9.2f%%\n",
                    benchmarkName(b).c_str(), acc.rSquared,
                    100.0 * acc.meanAbsErrorPct,
                    measured.pot.valid
                        ? bench::mpps(measured.pot.upb).c_str()
                        : "invalid",
                    predicted.pot.valid
                        ? bench::mpps(predicted.pot.upb).c_str()
                        : "invalid",
                    100.0 * delta);
    }
    std::printf("\na ridge regression over structural assignment "
                "features explains 40-70%% of the\nvariance; the "
                "predicted-performance UPB inherits that error — "
                "quantifying the\npaper's caveat about integrated "
                "predictor approaches.\n");
    return 0;
}
