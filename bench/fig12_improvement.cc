/**
 * @file
 * Figure 12: estimated possible performance improvement — the gap
 * between the best assignment captured in the sample and the
 * estimated optimal performance, with the 0.95 confidence interval
 * of that gap.
 *
 * Paper observations: at n=1000 the possible improvement ranges up
 * to 7-23% depending on the benchmark; at n=2000 it is below 5% for
 * all five; at n=5000 the largest is 2.4% (IPFwd-Mem).
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 12",
                  "estimated possible improvement of the best "
                  "sampled assignment vs the UPB");

    const Topology t2 = Topology::ultraSparcT2();
    const std::uint64_t seed = 123;

    std::printf("%-16s %6s %12s %12s %14s\n", "Benchmark", "n",
                "best (MPPS)", "gap (point)", "gap (CI hi)");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator estimator(engine, t2, 24,
                                                    seed);
        std::size_t grown = 0;
        for (std::size_t n : {1000u, 2000u, 5000u}) {
            const auto result = estimator.extend(n - grown);
            grown = n;
            const auto &pot = result.pot;
            const double gap_hi = std::isfinite(pot.upbUpper)
                ? (pot.upbUpper - result.bestObserved) / pot.upbUpper
                : std::nan("");
            std::printf("%-16s %6zu %12s %12s %14s\n",
                        benchmarkName(b).c_str(), n,
                        bench::mpps(result.bestObserved).c_str(),
                        bench::pct(result.estimatedLoss()).c_str(),
                        std::isfinite(gap_hi)
                            ? bench::pct(gap_hi).c_str()
                            : "unbounded");
        }
    }
    std::printf("\npaper: n=1000 improvements up to 7%% (AC), 9%% "
                "(IPFwd-L1), 16%% (IPFwd-Mem),\n19%% (Analyzer), "
                "23%% (Stateful); n=2000 all < 5%%; n=5000 max "
                "2.4%%.\n");
    return 0;
}
