/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 *
 * Every binary under bench/ regenerates one table or figure of the
 * paper and prints the same rows/series the paper reports, plus the
 * seeds and parameters used, so runs are exactly reproducible.
 */

#ifndef STATSCHED_BENCH_HARNESS_HH
#define STATSCHED_BENCH_HARNESS_HH

#include <cstdio>
#include <string>

namespace statsched
{
namespace bench
{

/** Prints a figure/table banner. */
inline void
banner(const std::string &experiment, const std::string &description)
{
    std::printf("============================================"
                "====================\n");
    std::printf("%s — %s\n", experiment.c_str(),
                description.c_str());
    std::printf("============================================"
                "====================\n");
}

/** Prints a section separator. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** Formats packets-per-second in millions with 3 decimals. */
inline std::string
mpps(double pps)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", pps / 1e6);
    return buf;
}

/** Formats a fraction as a percentage with 2 decimals. */
inline std::string
pct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", 100.0 * fraction);
    return buf;
}

} // namespace bench
} // namespace statsched

#endif // STATSCHED_BENCH_HARNESS_HH
