/**
 * @file
 * Ablation A5: the two branches of Extreme Value Theory — the
 * paper's Peaks-Over-Threshold method vs the classical block-maxima
 * / GEV method — estimating the same optimal performance from the
 * same samples.
 */

#include <cmath>
#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/gev.hh"
#include "stats/pot.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A5",
                  "POT/GPD (the paper) vs block-maxima/GEV upper "
                  "bound estimates, n = 5000");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-16s %12s %12s %12s %10s %10s\n", "Benchmark",
                "best (MPPS)", "POT UPB", "GEV UPB", "xi(POT)",
                "xi(GEV)");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::RandomAssignmentSampler sampler(t2, 24, 3003);
        std::vector<double> sample;
        double best = 0.0;
        for (int i = 0; i < 5000; ++i) {
            sample.push_back(engine.measure(sampler.draw()));
            best = std::max(best, sample.back());
        }

        const auto pot = stats::estimateOptimalPerformance(sample);
        const auto gev = stats::blockMaximaEstimate(sample, 100);
        const double gev_upb = gev.xi < 0.0
            ? gev.upperEndpoint()
            : std::numeric_limits<double>::infinity();

        std::printf("%-16s %12s %12s %12s %10.3f %10.3f\n",
                    benchmarkName(b).c_str(),
                    bench::mpps(best).c_str(),
                    pot.valid ? bench::mpps(pot.upb).c_str()
                              : "invalid",
                    std::isfinite(gev_upb)
                        ? bench::mpps(gev_upb).c_str() : "unbounded",
                    pot.fit.xi, gev.xi);
    }
    std::printf("\nboth EVT branches should agree on the endpoint "
                "within a few percent; POT uses\nthe data more "
                "efficiently (250 exceedances vs 100 block maxima), "
                "matching the\nstandard recommendation the paper "
                "follows.\n");
    return 0;
}
