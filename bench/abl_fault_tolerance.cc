/**
 * @file
 * Ablation A11: reliability of the iterative algorithm under an
 * unreliable measurement substrate. Transient faults are injected at
 * increasing rates into the simulated T2 engine; the fault-tolerant
 * stack (retry with backoff, quarantine, failure-aware top-up)
 * recovers, and the sweep tracks how far the estimate drifts from
 * the fault-free baseline and what the reliability machinery costs
 * in modeled experimentation time.
 *
 * Accepts `--quick` to shrink the sweep for the CI smoke run.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/harness.hh"
#include "core/fault_injection.hh"
#include "core/iterative.hh"
#include "core/parallel_engine.hh"
#include "core/resilient_engine.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main(int argc, char **argv)
{
    using namespace statsched;
    using core::Topology;

    const bool quick =
        argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    bench::banner("Ablation A11",
                  "iterative algorithm vs measurement fault rate, "
                  "IPFwd-L1 24 threads, 2% loss target");

    const Topology t2 = Topology::ultraSparcT2();
    core::IterativeOptions options;
    options.initialSample = quick ? 300 : 1000;
    options.incrementSample = 100;
    options.acceptableLoss = 0.02;
    options.maxSample = quick ? 2000 : 20000;

    // Fault-free baseline for the drift comparison.
    sim::SimulatedEngine clean_sim(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
    core::ParallelEngine clean(clean_sim, 4);
    const auto baseline =
        core::iterativeAssignmentSearch(clean, t2, 24, 5, options);
    std::printf("fault-free baseline: UPB %s MPPS in "
                "[%s, %s], %zu measurements\n\n",
                bench::mpps(baseline.final.pot.upb).c_str(),
                bench::mpps(baseline.final.pot.upbLower).c_str(),
                std::isfinite(baseline.final.pot.upbUpper)
                    ? bench::mpps(baseline.final.pot.upbUpper).c_str()
                    : "inf",
                baseline.totalSampled);

    std::printf("%-10s %-5s %10s %10s %9s %9s %9s %12s %12s\n",
                "fault rate", "met", "UPB", "drift", "valid",
                "failed", "retries", "time (min)", "overhead");
    const double sweep[] = {0.0, 0.05, 0.10, 0.20, 0.30};
    double baseline_minutes = 0.0;
    for (const double rate : sweep) {
        core::FaultOptions faults;
        faults.transientRate = rate;
        sim::SimulatedEngine sim(
            sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));
        core::FaultInjectingEngine faulty(sim, faults);
        core::ParallelEngine parallel(faulty, 4);
        core::ResilientEngine resilient(parallel, {});
        core::MeteredEngine meter(resilient);

        const auto run = core::iterativeAssignmentSearch(
            meter, t2, 24, 5, options);
        const core::EngineStats stats = meter.stats();
        const double minutes = stats.modeledSeconds / 60.0;
        if (rate == 0.0)
            baseline_minutes = minutes;
        const double drift = baseline.final.pot.upb > 0.0
            ? (run.final.pot.upb - baseline.final.pot.upb) /
                baseline.final.pot.upb
            : std::nan("");
        std::printf("%-10s %-5s %10s %10s %9zu %9zu %9llu "
                    "%12.1f %12s\n",
                    bench::pct(rate).c_str(),
                    run.satisfied ? "yes" : "NO",
                    run.final.pot.valid
                        ? bench::mpps(run.final.pot.upb).c_str()
                        : "invalid",
                    bench::pct(drift).c_str(), run.totalSampled,
                    run.totalFailed,
                    static_cast<unsigned long long>(stats.retries),
                    minutes,
                    baseline_minutes > 0.0
                        ? bench::pct(minutes / baseline_minutes - 1.0)
                              .c_str()
                        : "-");
    }

    std::printf("\nretry-with-backoff keeps the valid sample on its "
                "Ninit/Ndelta quota, so the\nUPB stays within the "
                "fault-free confidence interval across the sweep; "
                "the cost\nof reliability appears as retries and "
                "backoff in the modeled time, growing\nwith the "
                "fault rate.\n");
    return 0;
}
