/**
 * @file
 * Figure 14: the iterative case-study algorithm — number of random
 * task assignments needed until the best captured assignment is
 * within X% of the estimated optimal performance, for X = 2.5, 5
 * and 10 (Ninit = 1000, Ndelta = 100, confidence 0.95).
 *
 * Paper: the 2.5% target needs 2200 (IPFwd-L1) to 4500 (IPFwd-Mem)
 * assignments; the 10% target is met within 1300 for all five.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/iterative.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 14",
                  "iterative algorithm: sample size to reach the "
                  "acceptable loss");

    const Topology t2 = Topology::ultraSparcT2();
    const std::uint64_t seed = 321;

    std::printf("%-16s %14s %14s %14s\n", "Benchmark",
                "loss <= 2.5%", "loss <= 5%", "loss <= 10%");
    for (Benchmark b : caseStudySuite()) {
        std::printf("%-16s", benchmarkName(b).c_str());
        for (double loss : {0.025, 0.05, 0.10}) {
            SimulatedEngine engine(makeWorkload(b, 8));
            core::IterativeOptions options;
            options.initialSample = 1000;
            options.incrementSample = 100;
            options.acceptableLoss = loss;
            options.maxSample = 20000;
            // Stop only when the loss target holds at the 0.95
            // confidence level (paper: "the optimal system
            // performance was estimated for the 0.95 confidence
            // level").
            options.useUpperConfidenceBound = true;
            const auto run = core::iterativeAssignmentSearch(
                engine, t2, 24, seed, options);
            if (run.satisfied) {
                std::printf(" %9zu (%2zu it)",
                            run.totalSampled, run.steps.size());
            } else {
                std::printf(" %14s", "not reached");
            }
        }
        std::printf("\n");
    }

    bench::section("experimentation time at 1.5 s per measurement");
    std::printf("  1000 assignments ~ 25 min; 2000 ~ 50 min; "
                "5000 ~ 2 h (paper Section 5.4)\n");
    std::printf("  (Ninit=1000, Ndelta=100, confidence 0.95, "
                "seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 0;
}
