/**
 * @file
 * Figure 3: Cumulative distribution function of the performance of
 * ALL task assignments of a 6-thread network workload (two IPFwd
 * instances), obtained by exhaustive enumeration.
 *
 * The paper reports a 0.715-1.7 MPPS range (58% spread) and notes
 * the top 1% of assignments lie within ~0.6% of the optimum.
 */

#include <cstdio>
#include <vector>

#include "bench/harness.hh"
#include "core/enumerator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/ecdf.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Assignment;
    using core::Topology;

    bench::banner("Figure 3",
                  "population CDF of all assignments, 6-thread "
                  "IPFwd-intadd workload");

    const Topology t2 = Topology::ultraSparcT2();
    EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdIntAdd, 2),
                           {}, noiseless);

    std::vector<double> population;
    core::AssignmentEnumerator(t2, 6).forEach(
        [&engine, &population](const Assignment &a) {
            population.push_back(engine.deterministic(a));
            return true;
        });
    std::printf("population size: %zu assignments\n",
                population.size());

    const stats::Ecdf cdf(population);
    bench::section("CDF curve (performance MPPS -> F)");
    for (const auto &[x, f] : cdf.curve(25))
        std::printf("  %8s MPPS   F = %6.4f\n",
                    bench::mpps(x).c_str(), f);

    bench::section("summary");
    std::printf("  min  = %s MPPS\n", bench::mpps(cdf.min()).c_str());
    std::printf("  max  = %s MPPS (the exact optimum)\n",
                bench::mpps(cdf.max()).c_str());
    std::printf("  population spread (max-min)/max = %s "
                "(paper: 58%%)\n",
                bench::pct(cdf.relativeSpread()).c_str());
    std::printf("  top-1%% spread  = %s (paper: ~0.6%%)\n",
                bench::pct(cdf.topFractionSpread(0.01)).c_str());
    std::printf("  top-5%% spread  = %s\n",
                bench::pct(cdf.topFractionSpread(0.05)).c_str());
    std::printf("  median = %s MPPS\n",
                bench::mpps(cdf.quantile(0.5)).c_str());
    return 0;
}
