/**
 * @file
 * Section 3.3.2 diagnostic: GPD quantile plots for the exceedances
 * of every case-study benchmark ("in all experiments, the form of
 * quantile plots strongly suggest that samples of observations
 * follow a Generalized Pareto Distribution").
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"
#include "stats/diagnostics.hh"
#include "stats/pot.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Quantile-plot diagnostic",
                  "sample quantiles vs fitted GPD quantiles, "
                  "n = 2000 per benchmark");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-16s %10s %10s %10s %8s\n", "Benchmark",
                "xi-hat", "corr", "R^2", "KS");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::RandomAssignmentSampler sampler(t2, 24, 424242);
        std::vector<double> sample;
        for (int i = 0; i < 2000; ++i)
            sample.push_back(engine.measure(sampler.draw()));

        const auto sel = stats::selectThreshold(sample, {});
        const auto fit = stats::fitGpd(sel.exceedances);
        const auto plot = stats::gpdQuantilePlot(
            sel.exceedances, fit.distribution());
        const double ks = stats::ksStatistic(sel.exceedances,
                                             fit.distribution());
        std::printf("%-16s %10.3f %10.4f %10.4f %8.4f\n",
                    benchmarkName(b).c_str(), fit.xi,
                    plot.correlation, plot.rSquared, ks);
    }
    std::printf("\ncorrelation/R^2 near 1 and small KS distances "
                "indicate the GPD models the\nexceedances well, as "
                "the paper observes for all its samples.\n");

    bench::section("example quantile plot (IPFwd-L1, every 8th "
                   "point)");
    SimulatedEngine engine(makeWorkload(Benchmark::IpfwdL1, 8));
    core::RandomAssignmentSampler sampler(t2, 24, 424242);
    std::vector<double> sample;
    for (int i = 0; i < 2000; ++i)
        sample.push_back(engine.measure(sampler.draw()));
    const auto sel = stats::selectThreshold(sample, {});
    const auto fit = stats::fitGpd(sel.exceedances);
    const auto plot =
        stats::gpdQuantilePlot(sel.exceedances, fit.distribution());
    for (std::size_t i = 0; i < plot.points.size(); i += 8) {
        std::printf("  model %10.0f   sample %10.0f\n",
                    plot.points[i].first, plot.points[i].second);
    }
    return 0;
}
