/**
 * @file
 * Ablation A8: cross-validation of the two simulation engines — the
 * analytic fixed-point contention solver (the reproduction backbone)
 * against the cycle-approximate machine with real set-associative
 * caches and emergent queue backpressure.
 *
 * The EVT estimation only cares about the upper tail, so the key
 * check is that both engines agree on the near-optimal region and on
 * the estimated UPB, even where their mid-range populations differ.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "core/sampler.hh"
#include "sim/benchmarks.hh"
#include "sim/cycle_sim.hh"
#include "sim/engine.hh"
#include "stats/descriptive.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A8",
                  "analytic contention model vs cycle-approximate "
                  "simulation");

    const Topology t2 = Topology::ultraSparcT2();

    bench::section("per-assignment agreement (IPFwd-L1, 24 threads, "
                   "120 random assignments)");
    {
        const Workload wl = makeWorkload(Benchmark::IpfwdL1, 8);
        CycleSimEngine cycle(wl);
        EngineOptions noiseless;
        noiseless.noiseRelStdDev = 0.0;
        SimulatedEngine analytic(wl, {}, noiseless);
        core::RandomAssignmentSampler sampler(t2, 24, 8008);

        std::vector<double> c;
        std::vector<double> a;
        for (int i = 0; i < 120; ++i) {
            const auto assignment = sampler.draw();
            c.push_back(cycle.measure(assignment));
            a.push_back(analytic.deterministic(assignment));
        }
        std::printf("  analytic: mean %s, max %s MPPS\n",
                    bench::mpps(stats::mean(a)).c_str(),
                    bench::mpps(stats::maximum(a)).c_str());
        std::printf("  cycle:    mean %s, max %s MPPS\n",
                    bench::mpps(stats::mean(c)).c_str(),
                    bench::mpps(stats::maximum(c)).c_str());
        std::printf("  rank agreement (Pearson): %.3f\n",
                    stats::pearsonCorrelation(a, c));
    }

    bench::section("structured near-optimal layout (both engines)");
    for (Benchmark b : {Benchmark::IpfwdL1, Benchmark::Stateful}) {
        const Workload wl = makeWorkload(b, 8);
        CycleSimOptions long_run;
        long_run.cycles = 150000;
        long_run.warmupCycles = 30000;
        CycleSimEngine cycle(wl, {}, long_run);
        EngineOptions noiseless;
        noiseless.noiseRelStdDev = 0.0;
        SimulatedEngine analytic(wl, {}, noiseless);

        std::vector<core::ContextId> ctx(24);
        for (unsigned i = 0; i < 8; ++i) {
            ctx[3 * i + 0] = (i * 2 + 1) * 4 + 0;
            ctx[3 * i + 1] = (i * 2 + 0) * 4 + 0;
            ctx[3 * i + 2] = (i * 2 + 1) * 4 + 1;
        }
        const core::Assignment ideal(t2, ctx);
        const double c = cycle.measure(ideal);
        const double a = analytic.deterministic(ideal);
        std::printf("  %-16s analytic %s, cycle %s MPPS "
                    "(delta %+.1f%%)\n", benchmarkName(b).c_str(),
                    bench::mpps(a).c_str(), bench::mpps(c).c_str(),
                    100.0 * (c - a) / a);
    }

    bench::section("UPB estimates from each engine (n = 400)");
    {
        const Workload wl = makeWorkload(Benchmark::IpfwdL1, 8);
        CycleSimEngine cycle(wl);
        SimulatedEngine analytic(wl);

        stats::PotOptions pot;
        pot.threshold.minExceedances = 15;
        core::OptimalPerformanceEstimator cyc_est(cycle, t2, 24,
                                                  1234, pot);
        core::OptimalPerformanceEstimator ana_est(analytic, t2, 24,
                                                  1234, pot);
        const auto cr = cyc_est.extend(400);
        const auto ar = ana_est.extend(400);
        std::printf("  analytic: best %s, UPB %s MPPS\n",
                    bench::mpps(ar.bestObserved).c_str(),
                    ar.pot.valid ? bench::mpps(ar.pot.upb).c_str()
                                 : "invalid");
        std::printf("  cycle:    best %s, UPB %s MPPS\n",
                    bench::mpps(cr.bestObserved).c_str(),
                    cr.pot.valid ? bench::mpps(cr.pot.upb).c_str()
                                 : "invalid");
    }

    std::printf("\nthe engines agree within a few percent on the "
                "hand-built near-optimal\nlayout; their random-"
                "assignment populations (and hence the UPB each "
                "method\nestimates for *its own* machine) differ "
                "because the cycle machine models\nconflict misses, "
                "stochastic access streams and queue coupling that "
                "the\nanalytic model abstracts. The statistical "
                "method runs unchanged on either —\nits claims are "
                "always about the engine that produced the "
                "sample.\n");
    return 0;
}
