/**
 * @file
 * Figure 10: performance of the best task assignment captured in
 * random samples of 1000, 2000 and 5000 assignments, for the five
 * case-study benchmarks (8 instances, 24 threads each).
 *
 * Paper observation: growing the sample from 1000 to 5000 improves
 * the captured best only marginally (<= 0.6%).
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Figure 10",
                  "best-in-sample performance vs sample size, "
                  "24-thread workloads");

    const Topology t2 = Topology::ultraSparcT2();
    const std::uint64_t seed = 123;

    std::printf("%-16s %14s %14s %14s %14s\n", "Benchmark",
                "n=1000 (MPPS)", "n=2000 (MPPS)", "n=5000 (MPPS)",
                "gain 1k->5k");
    for (Benchmark b : caseStudySuite()) {
        SimulatedEngine engine(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator estimator(engine, t2, 24,
                                                    seed);
        // One growing sample: prefixes of it are the smaller runs.
        const double best1000 = estimator.extend(1000).bestObserved;
        const double best2000 = estimator.extend(1000).bestObserved;
        const double best5000 = estimator.extend(3000).bestObserved;
        std::printf("%-16s %14s %14s %14s %13.2f%%\n",
                    benchmarkName(b).c_str(),
                    bench::mpps(best1000).c_str(),
                    bench::mpps(best2000).c_str(),
                    bench::mpps(best5000).c_str(),
                    100.0 * (best5000 - best1000) / best1000);
    }
    std::printf("\npaper: the 1000->5000 improvement is at most "
                "0.6%% (IPFwd-Mem) and below\n0.25%% for the other "
                "benchmarks. (seed %llu, 1.5 s per measurement)\n",
                static_cast<unsigned long long>(seed));
    return 0;
}
