/**
 * @file
 * Ablation A10: sample-then-polish. Spend the same measurement
 * budget two ways — all on random sampling (the paper's method) vs
 * a sampling phase plus local-search refinement of the best found —
 * and certify both against the EVT-estimated optimum.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "core/estimator.hh"
#include "core/local_search.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace statsched;
    using namespace statsched::sim;
    using core::Topology;

    bench::banner("Ablation A10",
                  "pure random sampling vs sample-then-polish at "
                  "equal budget (2000 measurements)");

    const Topology t2 = Topology::ultraSparcT2();

    std::printf("%-16s %12s %12s %12s | %9s %9s\n", "Benchmark",
                "sample-2000", "sample-1500", "+polish-500",
                "gap(pure)", "gap(mix)");
    for (Benchmark b : caseStudySuite()) {
        // Arm 1: 2000 random samples.
        SimulatedEngine engine_a(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator pure(engine_a, t2, 24,
                                               606);
        const auto pure_result = pure.extend(2000);

        // Arm 2: 1500 random samples + 500 hill-climb measurements.
        SimulatedEngine engine_b(makeWorkload(b, 8));
        core::OptimalPerformanceEstimator mixed(engine_b, t2, 24,
                                                606);
        const auto sampled = mixed.extend(1500);
        core::LocalSearchOptions options;
        options.budget = 500;
        options.movesPerRound = 20;
        options.patience = 8;
        const auto polished = core::localSearchRefine(
            engine_b, *sampled.bestAssignment, options);

        // Certify both against the UPB estimated from the larger
        // pure sample (the best tail estimate available).
        const double upb = pure_result.pot.upb;
        const double gap_pure =
            (upb - pure_result.bestObserved) / upb;
        const double gap_mix =
            (upb - polished.bestPerformance) / upb;

        std::printf("%-16s %12s %12s %12s | %8.2f%% %8.2f%%\n",
                    benchmarkName(b).c_str(),
                    bench::mpps(pure_result.bestObserved).c_str(),
                    bench::mpps(sampled.bestObserved).c_str(),
                    bench::mpps(polished.bestPerformance).c_str(),
                    100.0 * gap_pure, 100.0 * gap_mix);
    }
    std::printf("\nlocal polish closes most of the remaining gap "
                "at equal budget; the EVT\nestimate certifies both "
                "arms without knowing how the assignment was "
                "found —\nthe evaluation capability the paper "
                "argues current schedulers lack.\n");
    return 0;
}
